"""Coarse graph edit distance for property-graph queries (Sec. 3.2.1).

Before introducing the fine-grained set-based syntactic distance, the
thesis extends the classic graph-edit-distance toolbox with property-graph
operations (Table 3.1): topological modifications (edge/vertex/direction
deletion and insertion) and predicate modifications (predicate/type
deletion and insertion).  Substitution is modelled as deletion followed by
insertion.  The *number of applied basic operations* then serves as a
coarse-grained distance between two queries.

This module counts that operation-level distance between two queries whose
elements are aligned by identifier (the same alignment the syntactic
distance uses).  It is deliberately coarse: it ignores how *much* a
predicate changed, which is exactly the drawback (discussed in
Sec. 3.2.1) that motivates the set-based distance of Sec. 3.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.query import GraphQuery


@dataclass
class EditOperationCount:
    """Break-down of basic operations transforming query 1 into query 2."""

    vertex_deletions: int = 0
    vertex_insertions: int = 0
    edge_deletions: int = 0
    edge_insertions: int = 0
    direction_deletions: int = 0
    direction_insertions: int = 0
    predicate_deletions: int = 0
    predicate_insertions: int = 0
    type_deletions: int = 0
    type_insertions: int = 0

    @property
    def total(self) -> int:
        return (
            self.vertex_deletions
            + self.vertex_insertions
            + self.edge_deletions
            + self.edge_insertions
            + self.direction_deletions
            + self.direction_insertions
            + self.predicate_deletions
            + self.predicate_insertions
            + self.type_deletions
            + self.type_insertions
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "vertex_deletions": self.vertex_deletions,
            "vertex_insertions": self.vertex_insertions,
            "edge_deletions": self.edge_deletions,
            "edge_insertions": self.edge_insertions,
            "direction_deletions": self.direction_deletions,
            "direction_insertions": self.direction_insertions,
            "predicate_deletions": self.predicate_deletions,
            "predicate_insertions": self.predicate_insertions,
            "type_deletions": self.type_deletions,
            "type_insertions": self.type_insertions,
        }


def count_edit_operations(q1: GraphQuery, q2: GraphQuery) -> EditOperationCount:
    """Count the basic operations (Table 3.1) transforming ``q1`` into ``q2``.

    Conventions (substitution = deletion + insertion throughout):

    * a vertex present on one side only costs one vertex operation plus one
      predicate operation per predicate it carries;
    * an edge present on one side only costs one edge operation plus its
      predicate operations and one type operation when it has a type set;
    * for shared elements, each attribute whose predicate interval differs
      costs a deletion and/or an insertion; direction sets are compared as
      value sets (one operation per direction in the symmetric
      difference); differing type sets cost deletion and/or insertion;
    * a shared edge whose endpoints differ is a re-wiring: edge deletion
      plus edge insertion.
    """
    ops = EditOperationCount()

    for vid in q1.vertex_ids | q2.vertex_ids:
        in1, in2 = q1.has_vertex(vid), q2.has_vertex(vid)
        if in1 and not in2:
            ops.vertex_deletions += 1
            ops.predicate_deletions += len(q1.vertex(vid).predicates)
        elif in2 and not in1:
            ops.vertex_insertions += 1
            ops.predicate_insertions += len(q2.vertex(vid).predicates)
        else:
            p1, p2 = q1.vertex(vid).predicates, q2.vertex(vid).predicates
            _count_predicate_ops(p1, p2, ops)

    for eid in q1.edge_ids | q2.edge_ids:
        in1, in2 = q1.has_edge(eid), q2.has_edge(eid)
        if in1 and not in2:
            edge = q1.edge(eid)
            ops.edge_deletions += 1
            ops.predicate_deletions += len(edge.predicates)
            if edge.types is not None:
                ops.type_deletions += 1
        elif in2 and not in1:
            edge = q2.edge(eid)
            ops.edge_insertions += 1
            ops.predicate_insertions += len(edge.predicates)
            if edge.types is not None:
                ops.type_insertions += 1
        else:
            e1, e2 = q1.edge(eid), q2.edge(eid)
            if e1.endpoints() != e2.endpoints():
                ops.edge_deletions += 1
                ops.edge_insertions += 1
            _count_predicate_ops(e1.predicates, e2.predicates, ops)
            d1 = {d.value for d in e1.directions}
            d2 = {d.value for d in e2.directions}
            ops.direction_deletions += len(d1 - d2)
            ops.direction_insertions += len(d2 - d1)
            t1 = e1.types or frozenset()
            t2 = e2.types or frozenset()
            if t1 != t2:
                if t1 - t2:
                    ops.type_deletions += 1
                if t2 - t1:
                    ops.type_insertions += 1

    return ops


def _count_predicate_ops(p1: Dict, p2: Dict, ops: EditOperationCount) -> None:
    for attr in set(p1) | set(p2):
        a, b = p1.get(attr), p2.get(attr)
        if a is not None and b is None:
            ops.predicate_deletions += 1
        elif a is None and b is not None:
            ops.predicate_insertions += 1
        elif a is not None and b is not None and a != b:
            ops.predicate_deletions += 1
            ops.predicate_insertions += 1


def coarse_ged(q1: GraphQuery, q2: GraphQuery) -> int:
    """Total basic-operation count (the coarse GED of Sec. 3.2.1)."""
    return count_edit_operations(q1, q2).total
