"""Minimum-cost assignment (Hungarian algorithm, Algorithm 2).

The result-level comparison of two result sets is modelled as a
generalised assignment problem (Definition 8): every result graph of the
original query must be assigned to exactly one result graph of the
explanation so the total distance is minimal.  The thesis solves it with a
Hungarian-based algorithm; we implement the O(n^2 * m) potentials variant,
which is equivalent to the classic matrix-reduction formulation sketched
in Algorithm 2 but does not mutate the cost matrix.

When the original result set has more graphs than the explanation's
(``rows > cols``), Algorithm 2 (Step 0) pads the matrix with
maximal-distance columns; :func:`assignment_cost` applies the same padding
with configurable ``pad_cost``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Matrix = Sequence[Sequence[float]]


def hungarian(cost: Matrix) -> List[int]:
    """Solve the rectangular assignment problem.

    ``cost`` must have ``len(cost) <= len(cost[0])`` (rows <= cols).
    Returns, for each row, the column index it is assigned to.  The total
    cost of this assignment is minimal.
    """
    n = len(cost)
    if n == 0:
        return []
    m = len(cost[0])
    if any(len(row) != m for row in cost):
        raise ValueError("cost matrix is ragged")
    if n > m:
        raise ValueError(f"need rows <= cols, got {n}x{m}; pad the matrix first")

    inf = float("inf")
    # Potentials u (rows) and v (columns); p[j] = row matched to column j.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [inf] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = inf
            j1 = 0
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = row[j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * n
    for j in range(1, m + 1):
        if p[j] > 0:
            assignment[p[j] - 1] = j - 1
    return assignment


def assignment_cost(
    cost: Matrix, pad_cost: float = 1.0
) -> Tuple[float, List[int]]:
    """Minimal total assignment cost with Algorithm 2's Step-0 padding.

    Pads with ``pad_cost`` columns when ``rows > cols`` (the padded
    assignment marks unmatched rows with column index ``-1`` in the
    returned assignment).  Returns ``(total_cost, row_to_col)``.
    """
    n = len(cost)
    if n == 0:
        return 0.0, []
    m = len(cost[0])
    if n > m:
        padded = [list(row) + [pad_cost] * (n - m) for row in cost]
        assignment = hungarian(padded)
        total = sum(padded[i][assignment[i]] for i in range(n))
        cleaned = [assignment[i] if assignment[i] < m else -1 for i in range(n)]
        return total, cleaned
    assignment = hungarian(cost)
    total = sum(cost[i][assignment[i]] for i in range(n))
    return total, assignment
