"""Comparison metrics for explanations (Chapter 3).

Three levels: syntactic (how different the queries look), cardinality (how
close to the expected result size), result (how much of the original
result content survives).
"""

from repro.metrics.assignment import assignment_cost, hungarian
from repro.metrics.cardinality import (
    CardinalityProblem,
    CardinalityThreshold,
    cardinality_distance,
    deviation,
    empty_answer_cardinality_distance,
)
from repro.metrics.ged import EditOperationCount, coarse_ged, count_edit_operations
from repro.metrics.hausdorff import (
    boolean_point_distance,
    jaccard_distance,
    modified_hausdorff,
    point_set_distance,
)
from repro.metrics.result_distance import (
    result_distance_matrix,
    result_graph_distance,
    result_overlap,
    result_set_distance,
)
from repro.metrics.syntactic import (
    edge_distance,
    element_distances,
    predicate_interval_distance,
    syntactic_distance,
    vertex_distance,
)

__all__ = [
    "CardinalityProblem",
    "CardinalityThreshold",
    "EditOperationCount",
    "assignment_cost",
    "boolean_point_distance",
    "cardinality_distance",
    "coarse_ged",
    "count_edit_operations",
    "deviation",
    "edge_distance",
    "element_distances",
    "empty_answer_cardinality_distance",
    "hungarian",
    "jaccard_distance",
    "modified_hausdorff",
    "point_set_distance",
    "predicate_interval_distance",
    "result_distance_matrix",
    "result_graph_distance",
    "result_overlap",
    "result_set_distance",
    "syntactic_distance",
    "vertex_distance",
]
