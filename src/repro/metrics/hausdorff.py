"""Set distances: point-point, point-set, modified Hausdorff (Sec. 3.2.2).

The thesis compares query elements through the *modified Hausdorff
distance* (MHD, Dubuisson & Jain) over sets of atomic descriptors
(Definition 4, Eq. 3.10):

    d(A, B) = max( 1/|A| * sum_{a in A} d(a, B),
                   1/|B| * sum_{b in B} d(b, A) )

with the Boolean point-point distance of Eq. 3.8 and the point-set
distance of Definition 3 / Eq. 3.9 (``0`` when the point occurs in the
other set, else ``1``).

Conventions for degenerate inputs (not spelled out in the thesis, chosen
to keep the measure monotone and bounded in [0, 1]):

* both sets empty -> distance 0 (nothing differs),
* exactly one set empty -> distance 1 (maximal difference).
"""

from __future__ import annotations

from typing import AbstractSet, Any, Callable, Hashable

PointDistance = Callable[[Any, Any], float]


def boolean_point_distance(a: Any, b: Any) -> float:
    """Eq. 3.8: 0 when equal, 1 otherwise."""
    return 0.0 if a == b else 1.0


def point_set_distance(
    point: Any,
    other: AbstractSet[Hashable],
    point_distance: PointDistance = boolean_point_distance,
) -> float:
    """Definition 3: minimal point-point distance from ``point`` to ``other``.

    With the Boolean point-point distance this degenerates to the
    membership test of Eq. 3.9, which is evaluated in O(1).
    """
    if not other:
        return 1.0
    if point_distance is boolean_point_distance:
        return 0.0 if point in other else 1.0
    return min(point_distance(point, b) for b in other)


def modified_hausdorff(
    a: AbstractSet[Hashable],
    b: AbstractSet[Hashable],
    point_distance: PointDistance = boolean_point_distance,
) -> float:
    """Definition 4 / Eq. 3.10: modified Hausdorff distance between sets."""
    if not a and not b:
        return 0.0
    if not a or not b:
        return 1.0
    forward = sum(point_set_distance(x, b, point_distance) for x in a) / len(a)
    backward = sum(point_set_distance(y, a, point_distance) for y in b) / len(b)
    return max(forward, backward)


def jaccard_distance(a: AbstractSet[Hashable], b: AbstractSet[Hashable]) -> float:
    """1 - |A cap B| / |A cup B| (auxiliary measure used in sanity tests)."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    return 1.0 - len(a & b) / union
