"""Batched candidate evaluation with pluggable executors.

Every rewriting engine ultimately does the same thing in its inner loop:
take a set of *independent* query variants, obtain a (bounded) result
cardinality for each, and decide how the search continues.  Before this
module existed, that loop was hand-written per engine and strictly
sequential -- one candidate popped, one ``count`` issued, repeat.

:class:`CandidateEvaluator` centralises the loop:

* candidates are submitted as a **batch** and results come back in the
  *submission order*, regardless of the executor's scheduling -- search
  code stays deterministic;
* signature-identical duplicates inside one batch are evaluated once
  (search frontiers reach the same relaxed query through different
  modification paths all the time);
* every admitted candidate is counted against a shared
  :class:`EvaluationBudget`, so a batch can never overrun the engine's
  evaluation budget -- the batch is truncated instead;
* the actual execution strategy is pluggable: :class:`SerialExecutor`
  runs in the calling thread, :class:`ParallelExecutor` fans the batch
  out over a ``ThreadPoolExecutor``, the asyncio-backed
  :class:`~repro.exec.async_executor.AsyncExecutor` parks the batch on
  an event loop under an in-flight cap (when the counter is
  async-native -- it exposes ``count_async(query, limit=...)`` -- the
  evaluator hands such an executor coroutine tasks, so waiting counts
  consume no threads at all), and the process-backed
  :class:`~repro.shard.ProcessExecutor` escapes the GIL entirely:
  executors advertising ``supports_queries`` receive the *queries*
  (closures cannot cross a process boundary) via ``run_queries`` and
  evaluate them against their own long-lived per-worker contexts.

Thread-safety: the evaluation stack underneath
(:class:`~repro.rewrite.cache.QueryResultCache`,
:class:`~repro.matching.matcher.PatternMatcher`,
:class:`~repro.matching.evalcache.EvaluationCache`) keeps all per-call
search state on the stack and mutates only dictionaries and integer
counters, which CPython performs atomically under the GIL; the evaluator
additionally deduplicates a batch *before* submission so one cache entry
is computed at most once per batch.
"""

from __future__ import annotations

import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Protocol, Sequence, TypeVar

from repro.core.query import GraphQuery
from repro.obs.tracing import SPAN_EVALUATE, current_tracer

T = TypeVar("T")

__all__ = [
    "BatchExecutor",
    "CandidateEvaluator",
    "EvaluatedCandidate",
    "EvaluationBudget",
    "ParallelExecutor",
    "SerialExecutor",
]


class EvaluationBudget:
    """Thread-safe evaluation allowance shared by co-operating engines.

    ``None`` means unlimited.  Engines *reserve* admissions with
    :meth:`grant` before spending them, so concurrent batches cannot
    collectively overrun the limit.
    """

    def __init__(self, max_evaluations: Optional[int] = None) -> None:
        if max_evaluations is not None and max_evaluations < 0:
            raise ValueError("max_evaluations must be >= 0 or None")
        self.max_evaluations = max_evaluations
        self._spent = 0
        self._lock = threading.Lock()

    @property
    def spent(self) -> int:
        """Number of evaluations admitted so far."""
        return self._spent

    @property
    def remaining(self) -> Optional[int]:
        """Evaluations left (``None`` = unlimited)."""
        if self.max_evaluations is None:
            return None
        return max(0, self.max_evaluations - self._spent)

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def grant(self, requested: int) -> int:
        """Admit up to ``requested`` evaluations; returns how many fit."""
        if requested <= 0:
            return 0
        with self._lock:
            if self.max_evaluations is None:
                self._spent += requested
                return requested
            granted = min(requested, self.max_evaluations - self._spent)
            granted = max(0, granted)
            self._spent += granted
            return granted


class BatchExecutor(Protocol):
    """Strategy interface: run a list of thunks, return results in order."""

    name: str
    #: batch size the engines should drain per round for this executor
    preferred_batch: int

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Evaluate the batch in the calling thread, one task after another."""

    name = "serial"
    #: natural batch size: without parallelism, speculative batching only
    #: wastes evaluation budget, so engines drain one candidate at a time
    preferred_batch = 1

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return [task() for task in tasks]


class ParallelExecutor:
    """Fan a batch out over a thread pool, keeping submission order.

    Results are collected with ``ThreadPoolExecutor.map``, so the output
    order equals the input order no matter which worker finishes first --
    search code built on top stays deterministic.  The pool is created
    lazily and reused across batches; call :meth:`close` (or use the
    instance as a context manager) to release the worker threads.

    The wall-clock win over :class:`SerialExecutor` comes from overlapping
    whatever blocking the evaluation path contains (storage latency, a
    remote backend, GIL-releasing kernels); pure-Python CPU work is still
    serialised by the GIL.
    """

    name = "parallel"

    def __init__(self, max_workers: int = 8) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        #: engines default their drain batch to the worker count, so one
        #: batch keeps every worker busy without overshooting the budget
        #: further than necessary
        self.preferred_batch = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="candidate-eval",
                )
            return self._pool

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        if len(tasks) <= 1:  # no point paying pool dispatch for one task
            return [task() for task in tasks]
        pool = self._ensure_pool()
        return list(pool.map(lambda task: task(), tasks))

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class EvaluatedCandidate:
    """One batch member with its evaluated (bounded) cardinality."""

    index: int
    query: GraphQuery
    cardinality: int


class CandidateEvaluator:
    """Evaluates batches of independent query variants against one graph.

    ``counter`` is anything exposing ``count(query, limit=...) -> int``
    (normally an :class:`~repro.exec.context.ExecutionContext` or its
    :class:`~repro.rewrite.cache.QueryResultCache`).  Construction from a
    context::

        evaluator = CandidateEvaluator(context.cache, budget=budget)
        for item in evaluator.evaluate(variants, limit=1000):
            ...

    ``evaluate`` admits candidates against the budget *in submission
    order* and returns one :class:`EvaluatedCandidate` per admitted
    candidate, also in submission order; candidates that did not fit the
    budget are simply absent from the result (callers detect truncation
    by comparing lengths).
    """

    def __init__(
        self,
        counter,
        executor: Optional[BatchExecutor] = None,
        budget: Optional[EvaluationBudget] = None,
        count_limit: Optional[int] = None,
        on_result: Optional[Callable[[EvaluatedCandidate], None]] = None,
        tracer=None,
    ) -> None:
        if not hasattr(counter, "count"):
            raise TypeError("counter must expose count(query, limit=...)")
        self.counter = counter
        self.executor: BatchExecutor = executor if executor is not None else SerialExecutor()
        self.budget = budget if budget is not None else EvaluationBudget(None)
        self.count_limit = count_limit
        #: request tracer; ``None`` resolves the ambient one per batch
        self.tracer = tracer
        #: incremental-results seam: called once per admitted candidate,
        #: in submission order, as soon as its batch finishes -- streaming
        #: consumers (the protocol server) see candidates while the search
        #: is still running.  Exceptions propagate into the engine, which
        #: is how cooperative cancellation unwinds an in-flight search.
        self.on_result = on_result
        #: total candidates admitted through this evaluator
        self.evaluated = 0
        #: batches served (for throughput reporting)
        self.batches = 0

    def evaluate(
        self,
        queries: Sequence[GraphQuery],
        limit: Optional[int] = ...,  # type: ignore[assignment]
    ) -> List[EvaluatedCandidate]:
        """Evaluate a batch; results in submission order, budget-truncated."""
        if limit is ...:
            limit = self.count_limit
        tracer = self.tracer if self.tracer is not None else current_tracer()
        with tracer.span(SPAN_EVALUATE) as span:
            results = self._evaluate(queries, limit, tracer, span)
        return results

    def _evaluate(self, queries, limit, tracer, span) -> List[EvaluatedCandidate]:
        admitted = self.budget.grant(len(queries))
        if tracer.enabled:
            span.attributes["submitted"] = len(queries)
            span.attributes["admitted"] = admitted
            span.attributes["truncated"] = admitted < len(queries)
        batch = list(queries[:admitted])
        if not batch:
            return []
        # one evaluation per distinct signature; duplicates share the result
        signatures: List[Hashable] = [q.signature() for q in batch]
        first_at: Dict[Hashable, int] = {}
        unique_queries: List[GraphQuery] = []
        for sig, query in zip(signatures, batch):
            if sig not in first_at:
                first_at[sig] = len(unique_queries)
                unique_queries.append(query)
        counter = self.counter
        if getattr(self.executor, "supports_queries", False):
            # query-shipping executor (e.g. the process-pool executor):
            # closures cannot cross a process boundary, so the executor
            # receives the queries themselves and evaluates them against
            # its own long-lived per-worker contexts; the local counter
            # is bypassed (results are identical -- the matcher is
            # deterministic -- only the cache locality differs)
            counts = self.executor.run_queries(unique_queries, limit=limit)
        else:
            if getattr(self.executor, "supports_async", False) and hasattr(
                counter, "count_async"
            ):
                # async-native counter + async-capable executor: hand over
                # coroutine-function tasks so waits park on the event loop
                # instead of occupying a worker thread per count
                tasks: List[Callable[[], int]] = [
                    functools.partial(counter.count_async, query, limit=limit)
                    for query in unique_queries
                ]
            else:
                tasks = [
                    (lambda q=query: counter.count(q, limit=limit))
                    for query in unique_queries
                ]
            counts = self.executor.run(tasks)
        self.evaluated += len(batch)
        self.batches += 1
        results = [
            EvaluatedCandidate(
                index=i, query=query, cardinality=counts[first_at[sig]]
            )
            for i, (sig, query) in enumerate(zip(signatures, batch))
        ]
        if self.on_result is not None:
            for item in results:
                self.on_result(item)
        return results
