"""Asyncio-backed batch execution: overlap counts without thread-per-count.

The thread-backed :class:`~repro.exec.evaluator.ParallelExecutor` buys
overlap of blocking evaluation time at the price of one OS thread per
concurrent count.  A service deployment that keeps *thousands* of counts
in flight over a network storage backend cannot afford that trade; it
wants the counts parked on an event loop and only a small, bounded pool
of threads for the parts of the stack that are genuinely synchronous.

:class:`AsyncExecutor` is that strategy behind the same
:class:`~repro.exec.evaluator.BatchExecutor` protocol, so
:class:`~repro.exec.evaluator.CandidateEvaluator` -- and through it
:class:`~repro.rewrite.coarse.CoarseRewriter`,
:class:`~repro.finegrained.traverse_search_tree.TraverseSearchTree` and
:class:`~repro.service.WhyQueryService` -- work unchanged:

* one private event loop runs on a daemon thread, shared by every batch
  this executor serves;
* each batch member is driven as a loop task under a configurable
  **in-flight cap** (an :class:`asyncio.Semaphore`), so a burst of huge
  batches degrades to queueing instead of unbounded task creation;
* **async-native counters** (anything whose task is a coroutine
  function, e.g. a ``count_async`` storage backend) are awaited directly
  on the loop -- no thread is consumed while they wait;
* plain synchronous thunks are offloaded to a bounded worker pool, so
  the executor is a drop-in replacement even for the purely in-memory
  evaluation stack.

``run()`` keeps the :class:`BatchExecutor` contract (results in
submission order, callable from any non-loop thread); ``run_async()`` is
the awaitable variant for callers that already live on an event loop.
Determinism: ordering is positional, never completion-order, so at equal
batch size the search trajectory of every engine is identical to the
serial executor's (asserted in ``tests/test_async_exec.py``).
"""

from __future__ import annotations

import asyncio
import inspect
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["AsyncExecutor"]


class AsyncExecutor:
    """Drive candidate batches through a private asyncio event loop.

    ``max_in_flight`` caps the number of batch members concurrently
    admitted to the loop (across *all* batches served by this executor);
    ``offload_workers`` bounds the thread pool used for synchronous
    tasks (async-native tasks never touch it).  The loop thread and the
    pool are created lazily and released by :meth:`close` (or by using
    the executor as a context manager).
    """

    name = "async"
    #: :class:`CandidateEvaluator` checks this flag before handing the
    #: executor coroutine-function tasks instead of plain thunks
    supports_async = True

    def __init__(
        self,
        max_in_flight: int = 64,
        offload_workers: Optional[int] = None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if offload_workers is not None and offload_workers < 1:
            raise ValueError("offload_workers must be >= 1 or None")
        self.max_in_flight = max_in_flight
        #: engines default their drain batch to the in-flight cap: one
        #: batch can saturate the loop without overshooting the budget
        #: further than necessary
        self.preferred_batch = max_in_flight
        self.offload_workers = (
            offload_workers if offload_workers is not None else min(max_in_flight, 32)
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._offload: Optional[ThreadPoolExecutor] = None
        self._semaphore = asyncio.Semaphore(max_in_flight)
        self._lock = threading.Lock()
        # counters (mutated on the loop thread only)
        self.tasks_started = 0
        self.peak_in_flight = 0
        self._in_flight = 0

    # -- lifecycle ------------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if self._loop is None:
                loop = asyncio.new_event_loop()
                thread = threading.Thread(
                    target=loop.run_forever,
                    name="async-executor-loop",
                    daemon=True,
                )
                thread.start()
                self._loop = loop
                self._loop_thread = thread
                # the semaphore binds to the loop on first await: give a
                # fresh loop a fresh semaphore so a closed executor can
                # be reused transparently
                self._semaphore = asyncio.Semaphore(self.max_in_flight)
            return self._loop

    def _offload_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._offload is None:
                self._offload = ThreadPoolExecutor(
                    max_workers=self.offload_workers,
                    thread_name_prefix="async-executor-offload",
                )
            return self._offload

    def close(self) -> None:
        """Stop the loop thread and release the offload workers.

        In-flight batches are cancelled and drained first, so a thread
        blocked in :meth:`run` unblocks with ``CancelledError`` instead
        of waiting forever on a stopped loop.
        """
        with self._lock:
            loop, self._loop = self._loop, None
            thread, self._loop_thread = self._loop_thread, None
            pool, self._offload = self._offload, None
        if loop is not None:

            def _shutdown() -> None:
                pending = [
                    task
                    for task in asyncio.all_tasks(loop)
                    if not task.done()
                ]
                for task in pending:
                    task.cancel()

                async def _drain() -> None:
                    await asyncio.gather(*pending, return_exceptions=True)
                    loop.stop()

                asyncio.ensure_future(_drain(), loop=loop)

            loop.call_soon_threadsafe(_shutdown)
            if thread is not None:
                thread.join(timeout=5.0)
            if thread is None or not thread.is_alive():
                loop.close()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "AsyncExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- batch execution ------------------------------------------------------

    async def _invoke(self, task: Callable[[], T]) -> T:
        async with self._semaphore:
            self._in_flight += 1
            self.tasks_started += 1
            if self._in_flight > self.peak_in_flight:
                self.peak_in_flight = self._in_flight
            try:
                if inspect.iscoroutinefunction(task) or getattr(
                    task, "returns_awaitable", False
                ):
                    return await task()
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(self._offload_pool(), task)
            finally:
                self._in_flight -= 1

    async def _gather(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return list(await asyncio.gather(*(self._invoke(task) for task in tasks)))

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Run a batch to completion; results in submission order.

        Blocks the calling thread until the whole batch finished, which
        is exactly what the (synchronous) search loops expect.  Must not
        be called from the executor's own loop thread -- await
        :meth:`run_async` there instead.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        loop = self._ensure_loop()
        if threading.current_thread() is self._loop_thread:
            raise RuntimeError(
                "AsyncExecutor.run() would deadlock on its own event loop; "
                "await run_async() instead"
            )
        future = asyncio.run_coroutine_threadsafe(self._gather(tasks), loop)
        return future.result()

    async def run_async(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Awaitable :meth:`run`, safe to call from any event loop.

        Batches submitted from a foreign loop (e.g. the caller's
        ``asyncio.run``) are routed onto the executor's own loop, so the
        in-flight cap keeps governing globally.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        loop = self._ensure_loop()
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            return await self._gather(tasks)
        future = asyncio.run_coroutine_threadsafe(self._gather(tasks), loop)
        return await asyncio.wrap_future(future)

    # -- reporting ------------------------------------------------------------

    def info(self) -> Dict[str, int]:
        """Lifetime counters (folded into ``WhyQueryService.stats()``)."""
        return {
            "max_in_flight": self.max_in_flight,
            "offload_workers": self.offload_workers,
            "tasks_started": self.tasks_started,
            "peak_in_flight": self.peak_in_flight,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncExecutor(max_in_flight={self.max_in_flight}, "
            f"offload_workers={self.offload_workers})"
        )
