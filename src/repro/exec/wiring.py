"""Component resolution shared by the engines' constructors.

Every engine accepts the same three-way wiring choice: explicit
components win, then the :class:`~repro.exec.context.ExecutionContext`'s
spine, then fresh per-engine wiring.  :func:`resolve_spine` implements
that precedence once so the engines cannot drift apart.

The ``context`` argument is duck-typed (anything exposing ``graph``,
``matcher``, ``cache``, ``statistics``) rather than imported, which keeps
this module a leaf: it can be imported from ``repro.rewrite`` /
``repro.finegrained`` without creating an import cycle with
:mod:`repro.exec.context`.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

from repro.core.graph import PropertyGraph
from repro.matching.matcher import PatternMatcher
from repro.rewrite.cache import QueryResultCache
from repro.rewrite.statistics import GraphStatistics

__all__ = ["resolve_spine"]


def resolve_spine(
    graph: Optional[PropertyGraph],
    context,
    matcher: Optional[PatternMatcher] = None,
    cache: Optional[QueryResultCache] = None,
    statistics: Optional[GraphStatistics] = None,
) -> Tuple[PropertyGraph, PatternMatcher, QueryResultCache, GraphStatistics]:
    """Resolve ``(graph, matcher, cache, statistics)`` for one engine.

    Raises :class:`ValueError` when neither ``graph`` nor ``context`` is
    given, or when both are given but disagree.

    Passing individual components (``matcher`` / ``cache`` /
    ``statistics``) alongside a ``context`` is deprecated: the context
    *is* the spine, and overriding one layer of it silently forfeits the
    shared caches the other layers assume.  Build a dedicated
    ``ExecutionContext`` with the desired components instead.
    """
    if graph is None and context is None:
        raise ValueError("either graph or context is required")
    if context is not None and any(
        component is not None for component in (matcher, cache, statistics)
    ):
        warnings.warn(
            "passing matcher=/cache=/statistics= alongside context= is "
            "deprecated; wire a dedicated ExecutionContext instead",
            DeprecationWarning,
            stacklevel=3,
        )
    if context is not None:
        if graph is not None and graph is not context.graph:
            raise ValueError("graph and context.graph differ")
        graph = context.graph
    if matcher is None:
        matcher = context.matcher if context is not None else PatternMatcher(graph)
    if cache is None:
        cache = context.cache if context is not None else QueryResultCache(matcher)
    if statistics is None:
        statistics = (
            context.statistics
            if context is not None
            else GraphStatistics(graph, evalcache=matcher.evalcache)
        )
    return graph, matcher, cache, statistics
