"""Shared execution spine: per-graph contexts and batched evaluation.

``repro.exec`` is the layer between the matching substrate and the
debugging engines: :class:`ExecutionContext` bundles the per-graph
evaluation stack (matcher, result cache, statistics, candidate cache,
attribute domain, preference models) so every engine constructs itself
*from* a context instead of wiring its own, and
:class:`CandidateEvaluator` evaluates batches of independent query
variants through a pluggable executor under a shared
:class:`EvaluationBudget`.  Executors: :class:`SerialExecutor` (one
task after another), :class:`ParallelExecutor` (thread pool) and
:class:`AsyncExecutor` (asyncio event loop with an in-flight cap, the
serving-scale strategy).
"""

from repro.exec.async_executor import AsyncExecutor
from repro.exec.context import ExecutionContext, execution_context
from repro.exec.evaluator import (
    BatchExecutor,
    CandidateEvaluator,
    EvaluatedCandidate,
    EvaluationBudget,
    ParallelExecutor,
    SerialExecutor,
)

__all__ = [
    "AsyncExecutor",
    "BatchExecutor",
    "CandidateEvaluator",
    "EvaluatedCandidate",
    "EvaluationBudget",
    "ExecutionContext",
    "ParallelExecutor",
    "SerialExecutor",
    "execution_context",
]
