"""The shared evaluation spine: one :class:`ExecutionContext` per graph.

The holistic engine (Sec. 3.1.3) assumes all debuggers operate on one
evaluation substrate, so the work one debugger performs is reusable by
the next.  Historically every entry point (the why-query engine, debug
sessions, the rewriters, the harness drivers) hand-wired its own
``PatternMatcher`` + ``QueryResultCache`` + ``GraphStatistics`` stack,
which silently *defeated* that sharing whenever two entry points met the
same graph.

An :class:`ExecutionContext` is the explicit, reusable wiring:

======================  =====================================================
``matcher``             the graph's :class:`~repro.matching.matcher.PatternMatcher`
``cache``               bounded-count memoisation (:class:`~repro.rewrite.cache.QueryResultCache`)
``statistics``          cardinality estimation (:class:`~repro.rewrite.statistics.GraphStatistics`)
``evalcache``           per-graph candidate-set cache (:mod:`repro.matching.evalcache`)
``domain``              data-driven value proposals (:class:`~repro.rewrite.operations.AttributeDomain`)
``preference_model``    rewrite preference model shared by interactive flows
``preferences``         traversal preferences shared by the explanation engines
======================  =====================================================

:meth:`ExecutionContext.for_graph` hands out **one context per graph**,
so independently constructed engines bound to the same graph
transparently share every layer; construct ``ExecutionContext(graph)``
directly when isolation is wanted (the harness does, to measure per-run
cache effectiveness).  The shared context is anchored *on the graph
object itself*: graph and context form a plain reference cycle, so the
context lives exactly as long as the graph is reachable and both are
garbage-collected together afterwards.  (The registry used to be a
``WeakKeyDictionary`` -- whose values strongly referenced their keys,
the documented way to make such a mapping immortal: every graph ever
passed to ``for_graph`` leaked for the process lifetime.  Asserted
collectable in ``tests/test_exec.py`` now.)

All layers self-invalidate from :attr:`PropertyGraph.version`, so a
long-lived context survives graph mutation without serving stale counts.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.explain.preferences import UserPreferences
from repro.matching.evalcache import EvaluationCache
from repro.matching.matcher import PatternMatcher
from repro.obs.tracing import current_tracer
from repro.rewrite.cache import QueryResultCache
from repro.rewrite.operations import AttributeDomain
from repro.rewrite.preference_model import RewritePreferenceModel
from repro.rewrite.statistics import GraphStatistics
from repro.stats import StatsReport, unified_stats

__all__ = ["ExecutionContext", "execution_context"]


class ExecutionContext:
    """Everything needed to evaluate and debug queries over one graph."""

    #: default bound on the per-context query-result cache: contexts are
    #: long-lived (process registry / service pool), so the result cache
    #: must not grow with every distinct query variant ever debugged
    DEFAULT_RESULT_CACHE_ENTRIES = 100_000

    def __init__(
        self,
        graph: PropertyGraph,
        injective: bool = True,
        typed_adjacency: bool = True,
        compiled: Optional[bool] = None,
        matcher: Optional[PatternMatcher] = None,
        cache: Optional[QueryResultCache] = None,
        result_cache_entries: Optional[int] = DEFAULT_RESULT_CACHE_ENTRIES,
        statistics: Optional[GraphStatistics] = None,
        domain: Optional[AttributeDomain] = None,
        preference_model: Optional[RewritePreferenceModel] = None,
        preferences: Optional[UserPreferences] = None,
    ) -> None:
        self.graph = graph
        self.matcher = (
            matcher
            if matcher is not None
            else PatternMatcher(
                graph,
                injective=injective,
                typed_adjacency=typed_adjacency,
                compiled=compiled,
            )
        )
        if self.matcher.graph is not graph:
            raise ValueError("matcher is bound to a different graph")
        self.cache = (
            cache
            if cache is not None
            else QueryResultCache(self.matcher, max_entries=result_cache_entries)
        )
        self.statistics = (
            statistics
            if statistics is not None
            else GraphStatistics(graph, evalcache=self.matcher.evalcache)
        )
        self.domain = domain if domain is not None else AttributeDomain(graph)
        self.preference_model = (
            preference_model
            if preference_model is not None
            else RewritePreferenceModel()
        )
        self.preferences = (
            preferences if preferences is not None else UserPreferences()
        )
        #: serialises *structural* swaps (e.g. domain refresh); the
        #: evaluation layers themselves are safe for concurrent reads
        self._lock = threading.RLock()
        self._domain_version = graph.version

    # -- registry -------------------------------------------------------------

    #: attribute anchoring the shared context on its graph (the graph
    #: and its context form a collectable cycle, not a global root)
    _ANCHOR = "_repro_shared_context"

    @classmethod
    def for_graph(cls, graph: PropertyGraph) -> "ExecutionContext":
        """The process-wide shared context of ``graph`` (created on demand)."""
        with _REGISTRY_LOCK:
            context = getattr(graph, cls._ANCHOR, None)
            if context is None or context.graph is not graph:
                context = cls(graph)
                setattr(graph, cls._ANCHOR, context)
            return context

    # -- evaluation façade ----------------------------------------------------

    @property
    def evalcache(self) -> EvaluationCache:
        """The per-graph candidate-set cache all layers share."""
        return self.matcher.evalcache

    @property
    def tracer(self):
        """The calling request's tracer (:data:`~repro.obs.NULL_TRACER`
        when tracing is off).  One context serves *concurrent* requests,
        so the tracer rides the ambient request context
        (:func:`repro.obs.current_tracer`) rather than mutable state on
        the shared context object."""
        return current_tracer()

    def count(self, query: GraphQuery, limit: Optional[int] = None) -> int:
        """Cached bounded cardinality of ``query`` (the hot entry point)."""
        return self.cache.count(query, limit=limit)

    async def count_async(self, query: GraphQuery, limit: Optional[int] = None) -> int:
        """Awaitable :meth:`count` for async serving paths.

        Async-native result caches (e.g. one backed by network storage,
        exposing ``count_async``) are awaited directly; the stock
        in-memory :class:`~repro.rewrite.cache.QueryResultCache` is
        offloaded with :func:`asyncio.to_thread` so the event loop stays
        responsive while the matcher runs.
        """
        cache = self.cache
        if hasattr(cache, "count_async"):
            return await cache.count_async(query, limit=limit)
        return await asyncio.to_thread(cache.count, query, limit)

    def attribute_domain(self) -> AttributeDomain:
        """The value-proposal domain, refreshed if the graph was mutated.

        ``AttributeDomain`` caches whole-graph histograms without version
        tracking of its own, so a long-lived context swaps in a fresh one
        when the graph version moved.
        """
        with self._lock:
            if self.graph.version != self._domain_version:
                self.domain = AttributeDomain(self.graph)
                self._domain_version = self.graph.version
            return self.domain

    # -- reporting ------------------------------------------------------------

    def cache_report(self) -> StatsReport:
        """Every cache layer plus matcher effort, in the unified schema.

        The matcher's :meth:`~repro.matching.matcher.PatternMatcher.cache_info`
        sections are extended with the query-result cache (App. B.2) under
        ``["caches"]["results"]``.  The pre-unification top-level keys
        (``report["results"]``, ``report["plan"]``, ...) stay readable for
        one release behind a :class:`DeprecationWarning`.
        """
        info = self.matcher.cache_info()
        caches = dict(info["caches"])
        caches["results"] = self.cache.stats.as_dict()
        return unified_stats(
            caches=caches,
            csr=info["csr"],
            programs=info["programs"],
            deltas=info["deltas"],
            extra={"matcher": info["matcher"]},
            legacy={
                "plan": caches["plan"],
                "vertex_candidates": caches["vertex_candidates"],
                "results": caches["results"],
                "programs": info["programs"],
            },
            hints={
                "plan": "['caches']['plan']",
                "vertex_candidates": "['caches']['vertex_candidates']",
                "results": "['caches']['results']",
                "programs": "['programs'] and ['csr']",
            },
            surface="cache_report()",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionContext(graph={self.graph!r}, "
            f"version={self.graph.version})"
        )


#: serialises shared-context creation across threads
_REGISTRY_LOCK = threading.Lock()


def execution_context(graph: PropertyGraph) -> ExecutionContext:
    """Module-level alias of :meth:`ExecutionContext.for_graph`."""
    return ExecutionContext.for_graph(graph)
