"""repro -- Why-query support in graph databases.

A production-quality reproduction of Elena Vasilyeva's dissertation
*"Why-Query Support in Graph Databases"* (TU Dresden, 2016): debugging
support for pattern-matching queries over property graphs that deliver
unexpectedly empty, too few, or too many results.

Public API overview
-------------------

Core model
    :class:`~repro.core.PropertyGraph`, :class:`~repro.core.GraphQuery`,
    predicate constructors (:func:`~repro.core.equals`,
    :func:`~repro.core.one_of`, :func:`~repro.core.between`, ...).
Matching
    :class:`~repro.matching.PatternMatcher` evaluates queries.
Metrics (Ch. 3)
    :func:`~repro.metrics.syntactic_distance`,
    :func:`~repro.metrics.result_set_distance`,
    :func:`~repro.metrics.cardinality_distance`,
    :class:`~repro.metrics.CardinalityThreshold`.
Explanations (Ch. 4-6)
    :func:`~repro.explain.discover_mcs`, :func:`~repro.explain.bounded_mcs`
    (subgraph-based); :class:`~repro.rewrite.CoarseRewriter` (why-empty
    rewriting); :class:`~repro.finegrained.TraverseSearchTree`
    (cardinality-driven fine-grained rewriting).
Holistic engine
    :class:`~repro.why.WhyQueryEngine` dispatches to the right debugger
    from the observed cardinality (Fig. 3.1).
Execution spine
    :class:`~repro.exec.ExecutionContext` bundles the per-graph
    evaluation stack every engine shares;
    :class:`~repro.exec.CandidateEvaluator` evaluates candidate batches
    through :class:`~repro.exec.SerialExecutor` /
    :class:`~repro.exec.ParallelExecutor` /
    :class:`~repro.exec.AsyncExecutor`.
Sharding & process parallelism
    :class:`~repro.shard.GraphPartitioner` splits a graph into
    vertex-range :class:`~repro.shard.GraphShard` blocks behind the
    :class:`~repro.shard.ShardedGraph` façade;
    :class:`~repro.shard.ShardedMatcher` fans candidate enumeration and
    expansion out per shard; :class:`~repro.shard.ProcessExecutor`
    evaluates candidate batches on worker processes (outside the GIL)
    with one warm ``ExecutionContext`` per worker.
Service
    :class:`~repro.service.WhyQueryService` keeps a bounded pool of warm
    per-graph contexts and serves concurrent ``explain()`` /
    ``open_session()`` requests -- synchronously or through the async
    front door (``explain_async``), with service-level admission control
    via :class:`~repro.service.BudgetPool`; ``executor="process"``
    gives every pooled graph its own warm worker pool.
Network front door
    :class:`~repro.server.WhyQueryProtocolServer` serves the service
    over a length-prefixed JSON-frame protocol (session multiplexing,
    streamed rewrite candidates, cooperative cancellation, per-tenant
    quotas); :func:`~repro.client.connect` /
    :func:`~repro.client.connect_async` return a
    :class:`~repro.client.WhyQueryClient` /
    :class:`~repro.client.AsyncWhyQueryClient` speaking it.  See
    ``docs/protocol.md``.
Unified stats
    Every surface (``service.stats()``, ``matcher.cache_info()``,
    ``executor.info()``) emits the :mod:`repro.stats` schema; the
    pre-1.3 flat keys stay readable for one release behind a
    :class:`DeprecationWarning`.
"""

from repro.core import (
    BOTH_DIRECTIONS,
    Direction,
    GraphQuery,
    Interval,
    Predicate,
    PropertyGraph,
    ResultGraph,
    ResultSet,
    ValueSet,
    at_least,
    at_most,
    between,
    equals,
    one_of,
)
from repro.exec import (
    AsyncExecutor,
    CandidateEvaluator,
    EvaluationBudget,
    ExecutionContext,
    ParallelExecutor,
    SerialExecutor,
    execution_context,
)
from repro.matching import PatternMatcher
from repro.shard import (
    GraphPartitioner,
    GraphShard,
    ProcessExecutor,
    ShardedGraph,
    ShardedMatcher,
)
from repro.metrics import (
    CardinalityProblem,
    CardinalityThreshold,
    cardinality_distance,
    result_set_distance,
    syntactic_distance,
)

from repro.service import AdmissionRejected, BudgetPool, WhyQueryService
from repro.client import (
    AsyncWhyQueryClient,
    WhyQueryClient,
    connect,
    connect_async,
)
from repro.server import WhyQueryProtocolServer, serve_in_thread

__version__ = "1.3.0"

__all__ = [
    "AdmissionRejected",
    "AsyncExecutor",
    "AsyncWhyQueryClient",
    "BOTH_DIRECTIONS",
    "BudgetPool",
    "CandidateEvaluator",
    "CardinalityProblem",
    "CardinalityThreshold",
    "Direction",
    "EvaluationBudget",
    "ExecutionContext",
    "GraphPartitioner",
    "GraphQuery",
    "GraphShard",
    "Interval",
    "ParallelExecutor",
    "PatternMatcher",
    "Predicate",
    "ProcessExecutor",
    "PropertyGraph",
    "ResultGraph",
    "ResultSet",
    "SerialExecutor",
    "ShardedGraph",
    "ShardedMatcher",
    "ValueSet",
    "WhyQueryClient",
    "WhyQueryProtocolServer",
    "WhyQueryService",
    "__version__",
    "at_least",
    "at_most",
    "between",
    "cardinality_distance",
    "connect",
    "connect_async",
    "equals",
    "execution_context",
    "one_of",
    "result_set_distance",
    "serve_in_thread",
    "syntactic_distance",
]
