"""Interned CSR-style array adjacency for the compiled matching backend.

The interpreter in :mod:`repro.matching.matcher` walks dict/list
adjacency and re-checks predicates object-by-object on every call.  The
compiled backend (:mod:`repro.matching.program`) instead runs over a
*packed* image of the graph built here once per ``(graph, version)``:

* vertex ids are interned to dense indexes ``0..n-1`` in ascending-vid
  order (``vid_of`` / ``ix_of``), edge ids to dense indexes in global
  insertion order (``eid_of`` / ``eix_of``);
* the type-partitioned directional adjacency of
  :class:`~repro.core.graph.PropertyGraph` is packed per ``(edge type,
  direction)`` into CSR triples ``(indptr, edge_ix, other_ix)`` of flat
  ``array('l')`` rows, replaying the source lists' insertion order
  element for element (the interpreter's enumeration-order contract);
* attribute predicates are interned by *predicate signature* into
  per-vertex / per-edge bitsets (``bytearray`` masks), so the inner
  matching loop tests a predicate with one index, never an object call.

The index is cached per graph beside the plan cache of
:mod:`repro.matching.plan` (same ``WeakKeyDictionary`` + mutation
``version`` invalidation contract: a mutated graph gets a fresh index,
and all compiled programs specialised over the stale arrays die with
it).  Partial graphs -- the worker-side
:class:`~repro.shard.affine.ShardSlice` -- are first-class: the interned
universe covers owned *and* halo vertices (halo attributes are
checkable), ``known`` marks the owned rows whose adjacency is complete,
and the seed universe spans the owned range only, mirroring the slice's
accessor surface exactly.
"""

from __future__ import annotations

import weakref
from array import array
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.core.query import QueryEdge, QueryVertex
from repro.matching.candidates import attributes_match, vertex_candidates
from repro.matching.evalcache import EvaluationCache, predicate_signature

__all__ = [
    "CSRIndex",
    "csr_entry",
    "csr_for",
    "csr_stats",
    "edge_predicate_signature",
]

_EMPTY_COUNTERS: Dict[str, int] = {
    "csr_builds": 0,
    "csr_bytes": 0,
    "programs_compiled": 0,
    "program_hits": 0,
}


def edge_predicate_signature(qedge: QueryEdge) -> Tuple:
    """Vertex-id-independent signature of a query edge's predicate map
    (the edge-side twin of :func:`repro.matching.evalcache.predicate_signature`)."""
    return tuple(
        sorted((attr, pred.signature()) for attr, pred in qedge.predicates.items())
    )


class CSRIndex:
    """One graph snapshot packed into flat arrays (see module docstring).

    Base tables are built eagerly; adjacency segments and predicate
    masks are interned lazily on first touch, so a workload only pays
    for the types and signatures its queries actually use.  The index
    holds only a weak reference to the graph (the cache below keys on
    the graph, and a strong back-reference would make both immortal).
    """

    __slots__ = (
        "_graph_ref",
        "version",
        "partial",
        "shard_index",
        "vid_of",
        "ix_of",
        "eid_of",
        "eix_of",
        "src",
        "tgt",
        "selfloop",
        "known",
        "seed_universe",
        "_adj",
        "_vertex_masks",
        "_seed_pools",
        "_edge_masks",
        "programs",
    )

    def __init__(self, graph: Any) -> None:
        self._graph_ref = weakref.ref(graph)
        self.version: int = graph.version
        # a ShardSlice exposes its halo attribute map and owned-vid set;
        # duck-typed so matching never imports the shard layer
        halo = getattr(graph, "_halo", None)
        owned = getattr(graph, "vertex_ids", None)
        self.partial: bool = halo is not None and owned is not None
        self.shard_index: Optional[int] = (
            getattr(graph, "index", None) if self.partial else None
        )
        if self.partial:
            vids = sorted(set(owned) | set(halo))
        else:
            vids = sorted(graph.vertices())
        self.vid_of = array("q", vids)
        self.ix_of: Dict[int, int] = {vid: ix for ix, vid in enumerate(vids)}
        ix_of = self.ix_of
        eids: list = []
        src = array("l")
        tgt = array("l")
        selfloop = bytearray()
        self.eix_of: Dict[int, int] = {}
        for record in graph.edges():
            self.eix_of[record.eid] = len(eids)
            eids.append(record.eid)
            src.append(ix_of[record.source])
            tgt.append(ix_of[record.target])
            selfloop.append(1 if record.source == record.target else 0)
        self.eid_of = array("q", eids)
        self.src = src
        self.tgt = tgt
        self.selfloop = selfloop
        if self.partial:
            self.known: Optional[bytearray] = bytearray(
                1 if vid in owned else 0 for vid in vids
            )
            self.seed_universe = array(
                "l", (ix for ix, vid in enumerate(vids) if vid in owned)
            )
        else:
            self.known = None
            self.seed_universe = array("l", range(len(vids)))
        #: (type | None, "out" | "in") -> (indptr, edge_ix, other_ix)
        self._adj: Dict[Tuple[Optional[str], str], Tuple[array, array, array]] = {}
        self._vertex_masks: Dict[Hashable, bytearray] = {}
        self._seed_pools: Dict[Hashable, array] = {}
        self._edge_masks: Dict[Hashable, bytearray] = {}
        #: (query signature, edge_order, injective) -> MatchProgram;
        #: lives exactly as long as the arrays it is specialised over
        self.programs: Dict[Hashable, Any] = {}

    def _graph(self) -> Any:
        graph = self._graph_ref()
        if graph is None:  # pragma: no cover - cache entry dies with the graph
            raise RuntimeError("CSRIndex outlived its graph")
        return graph

    @property
    def num_vertices(self) -> int:
        return len(self.vid_of)

    @property
    def num_edges(self) -> int:
        return len(self.eid_of)

    # -- adjacency segments -----------------------------------------------------

    def adjacency(
        self, type_key: Optional[str], direction: str
    ) -> Tuple[array, array, array]:
        """CSR triple ``(indptr, edge_ix, other_ix)`` for one ``(type,
        direction)`` segment (``type_key=None`` is the untyped walk).

        Row ``ix`` spans ``edge_ix[indptr[ix]:indptr[ix+1]]``, in the
        source graph's insertion order; ``other_ix`` carries the
        opposite endpoint so the inner loop never touches edge records.
        Unknown-adjacency rows of a partial graph are empty -- the
        program guards them with an explicit miss *before* scanning.
        """
        key = (type_key, direction)
        segment = self._adj.get(key)
        if segment is None:
            segment = self._build_adjacency(type_key, direction)
            self._adj[key] = segment
        return segment

    def _build_adjacency(
        self, type_key: Optional[str], direction: str
    ) -> Tuple[array, array, array]:
        graph = self._graph()
        out = direction == "out"
        endpoint = self.tgt if out else self.src
        eix_of = self.eix_of
        known = self.known
        indptr = array("l", [0])
        edge_ix = array("l")
        other_ix = array("l")
        for ix, vid in enumerate(self.vid_of):
            if known is None or known[ix]:
                if type_key is None:
                    eids = graph.out_edges(vid) if out else graph.in_edges(vid)
                elif out:
                    eids = graph.out_edges_of_type(vid, type_key)
                else:
                    eids = graph.in_edges_of_type(vid, type_key)
                for eid in eids:
                    eix = eix_of[eid]
                    edge_ix.append(eix)
                    other_ix.append(endpoint[eix])
            indptr.append(len(edge_ix))
        return indptr, edge_ix, other_ix

    # -- predicate masks ---------------------------------------------------------

    def vertex_mask(
        self, qvertex: QueryVertex, evalcache: Optional[EvaluationCache] = None
    ) -> Optional[bytearray]:
        """Bitset over vertex indexes satisfying the vertex's predicates,
        or ``None`` when the vertex is unconstrained (nothing to test).

        Interned by predicate signature, so all query variants sharing a
        constraint share one mask.  On full graphs the mask is filled
        from the (shared) candidate cache; on a partial graph the
        candidate indexes cover the owned range only, so the mask is
        built by direct evaluation over owned *and* halo attributes --
        expansion targets may land in the halo.
        """
        predicates = qvertex.predicates
        if not predicates:
            return None
        sig = predicate_signature(qvertex)
        mask = self._vertex_masks.get(sig)
        if mask is None:
            graph = self._graph()
            mask = bytearray(len(self.vid_of))
            if self.partial:
                for ix, vid in enumerate(self.vid_of):
                    if attributes_match(graph.vertex_attributes(vid), predicates):
                        mask[ix] = 1
            else:
                if evalcache is not None:
                    candidates = evalcache.vertex_candidates(qvertex)
                else:
                    candidates = vertex_candidates(graph, qvertex)
                ix_of = self.ix_of
                for vid in candidates or ():
                    mask[ix_of[vid]] = 1
            self._vertex_masks[sig] = mask
        return mask

    def seed_pool(
        self, qvertex: QueryVertex, evalcache: Optional[EvaluationCache] = None
    ) -> array:
        """Ascending vertex-index pool for seeding ``qvertex``: the seed
        universe (owned range on partial graphs) filtered by the
        vertex's mask.  Interned by predicate signature."""
        sig = predicate_signature(qvertex)
        pool = self._seed_pools.get(sig)
        if pool is None:
            mask = self.vertex_mask(qvertex, evalcache)
            if mask is None:
                pool = self.seed_universe
            else:
                pool = array("l", (ix for ix in self.seed_universe if mask[ix]))
            self._seed_pools[sig] = pool
        return pool

    def edge_mask(self, qedge: QueryEdge) -> Optional[bytearray]:
        """Bitset over edge indexes satisfying the edge's predicates, or
        ``None`` when the edge carries none.  Types are *not* part of
        the mask -- the typed adjacency segments prefilter them."""
        predicates = qedge.predicates
        if not predicates:
            return None
        sig = edge_predicate_signature(qedge)
        mask = self._edge_masks.get(sig)
        if mask is None:
            graph = self._graph()
            mask = bytearray(len(self.eid_of))
            for eix, eid in enumerate(self.eid_of):
                if attributes_match(graph.edge(eid).attributes, predicates):
                    mask[eix] = 1
            self._edge_masks[sig] = mask
        return mask

    # -- accounting --------------------------------------------------------------

    def nbytes(self) -> int:
        """Flat-array bytes held by this index (base tables, built
        adjacency segments, interned masks and pools)."""
        total = (
            self.vid_of.itemsize * len(self.vid_of)
            + self.eid_of.itemsize * len(self.eid_of)
            + self.src.itemsize * len(self.src)
            + self.tgt.itemsize * len(self.tgt)
            + len(self.selfloop)
            + self.seed_universe.itemsize * len(self.seed_universe)
        )
        if self.known is not None:
            total += len(self.known)
        for indptr, edge_ix, other_ix in self._adj.values():
            total += indptr.itemsize * len(indptr)
            total += edge_ix.itemsize * len(edge_ix)
            total += other_ix.itemsize * len(other_ix)
        for mask in self._vertex_masks.values():
            total += len(mask)
        for mask in self._edge_masks.values():
            total += len(mask)
        for pool in self._seed_pools.values():
            total += pool.itemsize * len(pool)
        return total


class _CsrEntry:
    """Per-graph cache slot: the live index plus lifetime counters that
    survive version-triggered rebuilds (the rebuild *is* the event the
    ``csr_builds`` counter reports)."""

    __slots__ = ("csr", "builds", "programs_compiled", "program_hits")

    def __init__(self, csr: CSRIndex) -> None:
        self.csr = csr
        self.builds = 1
        self.programs_compiled = 0
        self.program_hits = 0

    def counters(self) -> Dict[str, int]:
        return {
            "csr_builds": self.builds,
            "csr_bytes": self.csr.nbytes(),
            "programs_compiled": self.programs_compiled,
            "program_hits": self.program_hits,
        }


_CSR_ENTRIES: "weakref.WeakKeyDictionary[Any, _CsrEntry]" = weakref.WeakKeyDictionary()


def csr_entry(graph: Any) -> _CsrEntry:
    """The graph's cache entry, (re)built when the mutation counter moved
    (same invalidation contract as :func:`repro.matching.plan.build_plan`)."""
    entry = _CSR_ENTRIES.get(graph)
    if entry is None:
        entry = _CsrEntry(CSRIndex(graph))
        _CSR_ENTRIES[graph] = entry
    elif entry.csr.version != graph.version:
        entry.csr = CSRIndex(graph)
        entry.builds += 1
    return entry


def csr_for(graph: Any) -> CSRIndex:
    """The packed index for the graph's *current* version."""
    return csr_entry(graph).csr


def csr_stats(graph: Any) -> Dict[str, int]:
    """Compilation counters for reporting (zeros before any build; never
    forces a build or a rebuild)."""
    entry = _CSR_ENTRIES.get(graph)
    if entry is None:
        return dict(_EMPTY_COUNTERS)
    return entry.counters()
