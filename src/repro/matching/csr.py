"""Interned CSR-style array adjacency for the compiled matching backend.

The interpreter in :mod:`repro.matching.matcher` walks dict/list
adjacency and re-checks predicates object-by-object on every call.  The
compiled backend (:mod:`repro.matching.program`) instead runs over a
*packed* image of the graph built here once per ``(graph, version)``:

* vertex ids are interned to dense indexes ``0..n-1`` in ascending-vid
  order (``vid_of`` / ``ix_of``), edge ids to dense indexes in global
  insertion order (``eid_of`` / ``eix_of``);
* the type-partitioned directional adjacency of
  :class:`~repro.core.graph.PropertyGraph` is packed per ``(edge type,
  direction)`` into CSR triples ``(indptr, edge_ix, other_ix)`` of flat
  ``array('l')`` rows, replaying the source lists' insertion order
  element for element (the interpreter's enumeration-order contract);
* attribute predicates are interned by *predicate signature* into
  per-vertex / per-edge bitsets (``bytearray`` masks), so the inner
  matching loop tests a predicate with one index, never an object call.

The index is cached per graph beside the plan cache of
:mod:`repro.matching.plan` (same ``WeakKeyDictionary`` registry).  A
mutated graph no longer gets a wholesale rebuild: when the graph's
delta log still holds the records between the index's snapshot version
and the current one, :meth:`CSRIndex.apply_deltas` patches the packed
image **in place** -- appends to the interning tables and flat arrays,
row-local inserts into every built CSR segment, one-bit updates of the
interned predicate masks and seed pools.  Because every patch mutates
the *same* array objects the compiled kernels bound as defaults, the
programs cached on the index stay valid across versions; only their
derived pool memos are cleared.  The patch falls back to a full
rebuild (``csr_rebuilds``) when a delta breaks an interned-order
invariant: a vertex id below the current maximum (the dense interning
is ascending-vid), an edge touching an uninterned endpoint, or a ring
overrun.  Partial graphs -- the worker-side
:class:`~repro.shard.affine.ShardSlice` -- are first-class: the interned
universe covers owned *and* halo vertices (halo attributes are
checkable), ``known`` marks the owned rows whose adjacency is complete,
and the seed universe spans the owned range only, mirroring the slice's
accessor surface exactly.
"""

from __future__ import annotations

import os
import weakref
from array import array
from bisect import bisect_left
from itertools import count as _counter
from typing import Any, Dict, Hashable, Iterable, Optional, Tuple

from repro.core.query import QueryEdge, QueryVertex
from repro.matching.candidates import attributes_match, vertex_candidates
from repro.matching.evalcache import EvaluationCache, predicate_signature
from repro.obs.tracing import SPAN_CSR_BUILD, current_tracer

__all__ = [
    "CSRIndex",
    "csr_entry",
    "csr_for",
    "csr_stats",
    "edge_predicate_signature",
]

#: env var bounding the total bytes of live CSR indexes across all
#: cached graphs; unset/empty = unbounded (the historical behaviour)
CSR_BYTES_BUDGET_ENV = "REPRO_CSR_BYTES_BUDGET"

_EMPTY_COUNTERS: Dict[str, int] = {
    "csr_builds": 0,
    "csr_bytes": 0,
    "csr_patches": 0,
    "csr_rebuilds": 0,
    "csr_evictions": 0,
    "deltas_applied": 0,
    "programs_compiled": 0,
    "program_hits": 0,
}


def edge_predicate_signature(qedge: QueryEdge) -> Tuple:
    """Vertex-id-independent signature of a query edge's predicate map
    (the edge-side twin of :func:`repro.matching.evalcache.predicate_signature`)."""
    return tuple(
        sorted((attr, pred.signature()) for attr, pred in qedge.predicates.items())
    )


class CSRIndex:
    """One graph snapshot packed into flat arrays (see module docstring).

    Base tables are built eagerly; adjacency segments and predicate
    masks are interned lazily on first touch, so a workload only pays
    for the types and signatures its queries actually use.  The index
    holds only a weak reference to the graph (the cache below keys on
    the graph, and a strong back-reference would make both immortal).
    """

    __slots__ = (
        "_graph_ref",
        "version",
        "partial",
        "shard_index",
        "vid_of",
        "ix_of",
        "eid_of",
        "eix_of",
        "src",
        "tgt",
        "selfloop",
        "known",
        "seed_universe",
        "_adj",
        "_vertex_masks",
        "_mask_preds",
        "_seed_pools",
        "_edge_masks",
        "_edge_mask_preds",
        "programs",
    )

    def __init__(self, graph: Any) -> None:
        self._graph_ref = weakref.ref(graph)
        self.version: int = graph.version
        # a ShardSlice exposes its halo attribute map and owned-vid set;
        # duck-typed so matching never imports the shard layer
        halo = getattr(graph, "_halo", None)
        owned = getattr(graph, "vertex_ids", None)
        self.partial: bool = halo is not None and owned is not None
        self.shard_index: Optional[int] = (
            getattr(graph, "index", None) if self.partial else None
        )
        if self.partial:
            vids = sorted(set(owned) | set(halo))
        else:
            vids = sorted(graph.vertices())
        self.vid_of = array("q", vids)
        self.ix_of: Dict[int, int] = {vid: ix for ix, vid in enumerate(vids)}
        ix_of = self.ix_of
        eids: list = []
        src = array("l")
        tgt = array("l")
        selfloop = bytearray()
        self.eix_of: Dict[int, int] = {}
        for record in graph.edges():
            self.eix_of[record.eid] = len(eids)
            eids.append(record.eid)
            src.append(ix_of[record.source])
            tgt.append(ix_of[record.target])
            selfloop.append(1 if record.source == record.target else 0)
        self.eid_of = array("q", eids)
        self.src = src
        self.tgt = tgt
        self.selfloop = selfloop
        if self.partial:
            self.known: Optional[bytearray] = bytearray(
                1 if vid in owned else 0 for vid in vids
            )
            self.seed_universe = array(
                "l", (ix for ix, vid in enumerate(vids) if vid in owned)
            )
        else:
            self.known = None
            self.seed_universe = array("l", range(len(vids)))
        #: (type | None, "out" | "in") -> (indptr, edge_ix, other_ix)
        self._adj: Dict[Tuple[Optional[str], str], Tuple[array, array, array]] = {}
        self._vertex_masks: Dict[Hashable, bytearray] = {}
        #: signature -> the predicate map the mask was interned from,
        #: retained so a delta patch can re-evaluate single elements
        self._mask_preds: Dict[Hashable, Dict[str, Any]] = {}
        self._seed_pools: Dict[Hashable, array] = {}
        self._edge_masks: Dict[Hashable, bytearray] = {}
        self._edge_mask_preds: Dict[Hashable, Dict[str, Any]] = {}
        #: (query signature, edge_order, injective) -> MatchProgram;
        #: lives exactly as long as the arrays it is specialised over
        self.programs: Dict[Hashable, Any] = {}

    def _graph(self) -> Any:
        graph = self._graph_ref()
        if graph is None:  # pragma: no cover - cache entry dies with the graph
            raise RuntimeError("CSRIndex outlived its graph")
        return graph

    @property
    def num_vertices(self) -> int:
        return len(self.vid_of)

    @property
    def num_edges(self) -> int:
        return len(self.eid_of)

    # -- adjacency segments -----------------------------------------------------

    def adjacency(
        self, type_key: Optional[str], direction: str
    ) -> Tuple[array, array, array]:
        """CSR triple ``(indptr, edge_ix, other_ix)`` for one ``(type,
        direction)`` segment (``type_key=None`` is the untyped walk).

        Row ``ix`` spans ``edge_ix[indptr[ix]:indptr[ix+1]]``, in the
        source graph's insertion order; ``other_ix`` carries the
        opposite endpoint so the inner loop never touches edge records.
        Unknown-adjacency rows of a partial graph are empty -- the
        program guards them with an explicit miss *before* scanning.
        """
        key = (type_key, direction)
        segment = self._adj.get(key)
        if segment is None:
            segment = self._build_adjacency(type_key, direction)
            self._adj[key] = segment
        return segment

    def _build_adjacency(
        self, type_key: Optional[str], direction: str
    ) -> Tuple[array, array, array]:
        graph = self._graph()
        out = direction == "out"
        endpoint = self.tgt if out else self.src
        eix_of = self.eix_of
        known = self.known
        indptr = array("l", [0])
        edge_ix = array("l")
        other_ix = array("l")
        for ix, vid in enumerate(self.vid_of):
            if known is None or known[ix]:
                if type_key is None:
                    eids = graph.out_edges(vid) if out else graph.in_edges(vid)
                elif out:
                    eids = graph.out_edges_of_type(vid, type_key)
                else:
                    eids = graph.in_edges_of_type(vid, type_key)
                for eid in eids:
                    eix = eix_of[eid]
                    edge_ix.append(eix)
                    other_ix.append(endpoint[eix])
            indptr.append(len(edge_ix))
        return indptr, edge_ix, other_ix

    # -- predicate masks ---------------------------------------------------------

    def vertex_mask(
        self, qvertex: QueryVertex, evalcache: Optional[EvaluationCache] = None
    ) -> Optional[bytearray]:
        """Bitset over vertex indexes satisfying the vertex's predicates,
        or ``None`` when the vertex is unconstrained (nothing to test).

        Interned by predicate signature, so all query variants sharing a
        constraint share one mask.  On full graphs the mask is filled
        from the (shared) candidate cache; on a partial graph the
        candidate indexes cover the owned range only, so the mask is
        built by direct evaluation over owned *and* halo attributes --
        expansion targets may land in the halo.
        """
        predicates = qvertex.predicates
        if not predicates:
            return None
        sig = predicate_signature(qvertex)
        mask = self._vertex_masks.get(sig)
        if mask is None:
            graph = self._graph()
            mask = bytearray(len(self.vid_of))
            if self.partial:
                for ix, vid in enumerate(self.vid_of):
                    if attributes_match(graph.vertex_attributes(vid), predicates):
                        mask[ix] = 1
            else:
                if evalcache is not None:
                    candidates = evalcache.vertex_candidates(qvertex)
                else:
                    candidates = vertex_candidates(graph, qvertex)
                ix_of = self.ix_of
                for vid in candidates or ():
                    mask[ix_of[vid]] = 1
            self._vertex_masks[sig] = mask
            self._mask_preds[sig] = dict(predicates)
        return mask

    def seed_pool(
        self, qvertex: QueryVertex, evalcache: Optional[EvaluationCache] = None
    ) -> array:
        """Ascending vertex-index pool for seeding ``qvertex``: the seed
        universe (owned range on partial graphs) filtered by the
        vertex's mask.  Interned by predicate signature."""
        sig = predicate_signature(qvertex)
        pool = self._seed_pools.get(sig)
        if pool is None:
            mask = self.vertex_mask(qvertex, evalcache)
            if mask is None:
                pool = self.seed_universe
            else:
                pool = array("l", (ix for ix in self.seed_universe if mask[ix]))
            self._seed_pools[sig] = pool
        return pool

    def edge_mask(self, qedge: QueryEdge) -> Optional[bytearray]:
        """Bitset over edge indexes satisfying the edge's predicates, or
        ``None`` when the edge carries none.  Types are *not* part of
        the mask -- the typed adjacency segments prefilter them."""
        predicates = qedge.predicates
        if not predicates:
            return None
        sig = edge_predicate_signature(qedge)
        mask = self._edge_masks.get(sig)
        if mask is None:
            graph = self._graph()
            mask = bytearray(len(self.eid_of))
            for eix, eid in enumerate(self.eid_of):
                if attributes_match(graph.edge(eid).attributes, predicates):
                    mask[eix] = 1
            self._edge_masks[sig] = mask
            self._edge_mask_preds[sig] = dict(predicates)
        return mask

    # -- delta patching ----------------------------------------------------------

    def _patchable(self, deltas: Iterable[Tuple]) -> bool:
        """Can the whole delta run be applied in place?  Checked *before*
        any mutation, so a rejected run leaves the index untouched and
        the caller can rebuild from a clean state.

        Rejected runs are the ones that would break an interning
        invariant: a vertex id at or below the current dense-interning
        maximum (``vid_of`` is ascending-vid), an edge whose endpoint or
        id is unknown to both the index and the batch, or a record kind
        this index does not understand.
        """
        max_vid = self.vid_of[-1] if self.vid_of else -1
        new_vids: set = set()
        new_eids: set = set()
        for record in deltas:
            kind = record[0]
            if kind == "v" or kind == "hv":
                vid = record[1]
                if vid <= max_vid or vid in new_vids:
                    return False
                new_vids.add(vid)
                max_vid = max(max_vid, vid)
            elif kind == "e":
                eid, source, target = record[1], record[2], record[3]
                if eid in self.eix_of or eid in new_eids:
                    return False
                if source not in self.ix_of and source not in new_vids:
                    return False
                if target not in self.ix_of and target not in new_vids:
                    return False
                new_eids.add(eid)
            elif kind == "va":
                if record[1] not in self.ix_of and record[1] not in new_vids:
                    return False
            elif kind == "ea":
                if record[1] not in self.eix_of and record[1] not in new_eids:
                    return False
            else:
                return False
        return True

    def apply_deltas(self, deltas: Tuple[Tuple, ...]) -> bool:
        """Patch the packed image in place with a pending delta run.

        Returns ``False`` (index untouched) when the run is not
        patchable; the caller falls back to a full rebuild.  On success
        every flat array keeps its object identity, so compiled
        programs bound over them stay valid.  The one structural event
        programs cannot survive is a built adjacency segment going from
        empty to non-empty -- program lowering prunes dead subtrees over
        empty segments -- so that transition drops the cached programs;
        otherwise only their derived restrict-pool memos are cleared.
        """
        if not self._patchable(deltas):
            return False
        graph = self._graph()
        revived_segment = False
        for record in deltas:
            kind = record[0]
            if kind == "v":
                self._patch_add_vertex(record[1], record[2], owned=True)
            elif kind == "hv":
                self._patch_add_vertex(record[1], record[2], owned=False)
            elif kind == "e":
                revived_segment |= self._patch_add_edge(
                    record[1], record[2], record[3], record[4], record[5]
                )
            elif kind == "va":
                self._patch_vertex_attr(graph, record[1], record[2])
            else:  # "ea"
                self._patch_edge_attr(graph, record[1], record[2])
        if revived_segment:
            self.programs.clear()
        else:
            for program in self.programs.values():
                program._restrict_pools.clear()
        self.version = graph.version
        return True

    def _patch_add_vertex(self, vid: int, attrs: Dict[str, Any], owned: bool) -> None:
        ix = len(self.vid_of)
        self.vid_of.append(vid)
        self.ix_of[vid] = ix
        if self.known is not None:
            self.known.append(1 if owned else 0)
        if owned or self.known is None:
            # note: unconstrained seed pools *are* this array object
            self.seed_universe.append(ix)
        for indptr, _edge_ix, _other_ix in self._adj.values():
            indptr.append(indptr[-1])
        for sig, mask in self._vertex_masks.items():
            bit = 1 if attributes_match(attrs, self._mask_preds[sig]) else 0
            mask.append(bit)
            if bit and (owned or self.known is None):
                pool = self._seed_pools.get(sig)
                if pool is not None and pool is not self.seed_universe:
                    pool.append(ix)

    def _patch_add_edge(
        self, eid: int, source: int, target: int, type: str, attrs: Dict[str, Any]
    ) -> bool:
        eix = len(self.eid_of)
        self.eid_of.append(eid)
        self.eix_of[eid] = eix
        six = self.ix_of[source]
        tix = self.ix_of[target]
        self.src.append(six)
        self.tgt.append(tix)
        self.selfloop.append(1 if six == tix else 0)
        known = self.known
        revived = False
        for (type_key, direction), (indptr, edge_ix, other_ix) in self._adj.items():
            if type_key is not None and type_key != type:
                continue
            if direction == "out":
                row, other = six, tix
            else:
                row, other = tix, six
            if known is not None and not known[row]:
                continue
            if not edge_ix:
                revived = True
            # new edges append at the *end* of their row, replaying the
            # graph-side insertion order the interpreter enumerates
            pos = indptr[row + 1]
            edge_ix[pos:pos] = array("l", (eix,))
            other_ix[pos:pos] = array("l", (other,))
            for j in range(row + 1, len(indptr)):
                indptr[j] += 1
        for sig, mask in self._edge_masks.items():
            mask.append(
                1 if attributes_match(attrs, self._edge_mask_preds[sig]) else 0
            )
        return revived

    def _patch_vertex_attr(self, graph: Any, vid: int, attr: str) -> None:
        ix = self.ix_of[vid]
        attrs = graph.vertex_attributes(vid)
        in_universe = self.known is None or self.known[ix]
        for sig, preds in self._mask_preds.items():
            if attr not in preds:
                continue
            mask = self._vertex_masks[sig]
            bit = 1 if attributes_match(attrs, preds) else 0
            if mask[ix] == bit:
                continue
            mask[ix] = bit
            pool = self._seed_pools.get(sig)
            if pool is None or pool is self.seed_universe or not in_universe:
                continue
            pos = bisect_left(pool, ix)
            if bit:
                pool.insert(pos, ix)
            elif pos < len(pool) and pool[pos] == ix:
                pool.pop(pos)

    def _patch_edge_attr(self, graph: Any, eid: int, attr: str) -> None:
        eix = self.eix_of[eid]
        attrs = graph.edge(eid).attributes
        for sig, preds in self._edge_mask_preds.items():
            if attr in preds:
                self._edge_masks[sig][eix] = (
                    1 if attributes_match(attrs, preds) else 0
                )

    # -- accounting --------------------------------------------------------------

    def nbytes(self) -> int:
        """Flat-array bytes held by this index (base tables, built
        adjacency segments, interned masks and pools)."""
        total = (
            self.vid_of.itemsize * len(self.vid_of)
            + self.eid_of.itemsize * len(self.eid_of)
            + self.src.itemsize * len(self.src)
            + self.tgt.itemsize * len(self.tgt)
            + len(self.selfloop)
            + self.seed_universe.itemsize * len(self.seed_universe)
        )
        if self.known is not None:
            total += len(self.known)
        for indptr, edge_ix, other_ix in self._adj.values():
            total += indptr.itemsize * len(indptr)
            total += edge_ix.itemsize * len(edge_ix)
            total += other_ix.itemsize * len(other_ix)
        for mask in self._vertex_masks.values():
            total += len(mask)
        for mask in self._edge_masks.values():
            total += len(mask)
        for pool in self._seed_pools.values():
            total += pool.itemsize * len(pool)
        return total


#: monotonic recency stamp shared by every cache entry (LRU eviction order)
_TOUCH = _counter(1)


class _CsrEntry:
    """Per-graph cache slot: the live index (or ``None`` after a
    byte-budget eviction) plus lifetime counters that survive
    version-triggered rebuilds and patches."""

    __slots__ = (
        "csr",
        "builds",
        "patches",
        "rebuilds",
        "deltas_applied",
        "evictions",
        "touch",
        "programs_compiled",
        "program_hits",
    )

    def __init__(self, csr: CSRIndex) -> None:
        self.csr: Optional[CSRIndex] = csr
        self.builds = 1
        self.patches = 0
        self.rebuilds = 0
        self.deltas_applied = 0
        self.evictions = 0
        self.touch = next(_TOUCH)
        self.programs_compiled = 0
        self.program_hits = 0

    def counters(self) -> Dict[str, int]:
        return {
            "csr_builds": self.builds,
            "csr_bytes": self.csr.nbytes() if self.csr is not None else 0,
            "csr_patches": self.patches,
            "csr_rebuilds": self.rebuilds,
            "csr_evictions": self.evictions,
            "deltas_applied": self.deltas_applied,
            "programs_compiled": self.programs_compiled,
            "program_hits": self.program_hits,
        }


_CSR_ENTRIES: "weakref.WeakKeyDictionary[Any, _CsrEntry]" = weakref.WeakKeyDictionary()


def _pending_deltas(graph: Any, version: int) -> Optional[Tuple[Tuple, ...]]:
    """The graph's delta records since ``version``, or ``None`` when the
    graph keeps no log (plain duck-typed graphs) or the ring overran."""
    deltas_since = getattr(graph, "deltas_since", None)
    if deltas_since is None:
        return None
    return deltas_since(version)


def _enforce_budget(current: _CsrEntry) -> None:
    """Evict least-recently-touched indexes (never ``current``) until the
    total live CSR bytes fit under ``REPRO_CSR_BYTES_BUDGET``.  Evicted
    entries keep their counters and rebuild lazily on next touch."""
    raw = os.environ.get(CSR_BYTES_BUDGET_ENV)
    if not raw:
        return
    try:
        budget = int(raw)
    except ValueError:
        return
    live = [entry for entry in _CSR_ENTRIES.values() if entry.csr is not None]
    total = sum(entry.csr.nbytes() for entry in live)
    if total <= budget:
        return
    live.sort(key=lambda entry: entry.touch)
    for entry in live:
        if entry is current:
            continue
        total -= entry.csr.nbytes()
        entry.csr = None
        entry.evictions += 1
        if total <= budget:
            break


def csr_entry(graph: Any) -> _CsrEntry:
    """The graph's cache entry, brought up to the graph's *current*
    version: patched in place from the pending delta run when the log
    still holds it, rebuilt otherwise (ring overrun, unpatchable
    record, no log, or byte-budget eviction)."""
    entry = _CSR_ENTRIES.get(graph)
    if entry is None:
        with current_tracer().span(SPAN_CSR_BUILD, reason="first"):
            entry = _CsrEntry(CSRIndex(graph))
        _CSR_ENTRIES[graph] = entry
    elif entry.csr is None:
        with current_tracer().span(SPAN_CSR_BUILD, reason="evicted"):
            entry.csr = CSRIndex(graph)
        entry.builds += 1
    elif entry.csr.version != graph.version:
        deltas = _pending_deltas(graph, entry.csr.version)
        if deltas is not None and entry.csr.apply_deltas(deltas):
            entry.patches += 1
            entry.deltas_applied += len(deltas)
        else:
            with current_tracer().span(SPAN_CSR_BUILD, reason="rebuild"):
                entry.csr = CSRIndex(graph)
            entry.builds += 1
            entry.rebuilds += 1
    entry.touch = next(_TOUCH)
    _enforce_budget(entry)
    return entry


def csr_for(graph: Any) -> CSRIndex:
    """The packed index for the graph's *current* version."""
    return csr_entry(graph).csr


def csr_stats(graph: Any) -> Dict[str, int]:
    """Compilation counters for reporting (zeros before any build; never
    forces a build or a rebuild)."""
    entry = _CSR_ENTRIES.get(graph)
    if entry is None:
        return dict(_EMPTY_COUNTERS)
    return entry.counters()
