"""Backtracking pattern matcher for property graphs.

Pattern-matching queries return the data subgraphs matching the query graph
(Sec. 3.1.2).  The matcher performs classic backtracking subgraph
isomorphism with:

* candidate pre-filtering from graph indexes,
* connected, selectivity-ordered evaluation plans (:mod:`repro.matching.plan`),
* direction sets (forward / backward / both, Sec. 3.2.2),
* edge type sets and predicate intervals on vertices and edges,
* injective vertex and edge bindings by default (isomorphism semantics;
  homomorphisms are available via ``injective=False``),
* bounded evaluation: ``limit`` stops after N matches, which the bounded
  explanation algorithms (Ch. 4) and the rewriting engines (Ch. 5-6) use to
  test cardinality thresholds without full enumeration.

The matcher also counts how many match calls it has served (``calls``) and
how many backtracking steps were taken (``steps``); all evaluation-budget
experiments report these counters.  Expansion walks the graph's
type-partitioned adjacency, so a query edge with a type set only ever
visits data edges of those types; :meth:`PatternMatcher.cache_info`
reports the shared plan/candidate cache counters next to them.
"""

from __future__ import annotations

import os
from typing import AbstractSet, Dict, Iterator, List, Optional, Sequence, Set

from repro.core.graph import PropertyGraph
from repro.core.query import Direction, GraphQuery, QueryEdge
from repro.core.result import ResultGraph, ResultSet
from repro.matching.candidates import (
    attributes_match,
    edge_matches,
    vertex_matches,
)
from repro.matching.csr import csr_stats
from repro.matching.evalcache import (
    EvaluationCache,
    shared_evaluation_cache,
)
from repro.matching.plan import (
    ExpandStep,
    PlanStep,
    SeedStep,
    build_plan,
    plan_cache_stats,
)
from repro.matching.program import (
    MatchProgram,
    ProgramUnsupported,
    compiled_program,
)
from repro.obs.tracing import SPAN_MATCH, SPAN_PLAN, current_tracer
from repro.stats import (
    StatsReport,
    csr_section,
    deltas_section,
    programs_section,
    unified_stats,
)


def _compiled_default() -> bool:
    """Opt-in default for the compiled backend (the CI matrix leg sets
    ``REPRO_COMPILED_MATCH=1`` to run the whole suite through it)."""
    return os.environ.get("REPRO_COMPILED_MATCH", "0") not in ("", "0")


class PatternMatcher:
    """Evaluates :class:`~repro.core.query.GraphQuery` patterns on a graph.

    One matcher instance is bound to one data graph; it is stateless
    between calls apart from its instrumentation counters.  Matchers bound
    to the same graph share one evaluation cache (candidate sets) and one
    plan cache by default, so independently constructed engines reuse each
    other's derivations; pass ``evalcache`` to isolate a matcher.

    ``typed_adjacency=False`` disables the type-partitioned expansion and
    falls back to scanning all incident edges with a per-edge type test
    (the pre-optimisation behaviour; kept for benchmarking and as a
    correctness oracle).

    ``compiled=True`` routes ``match``/``count``/``exists`` through the
    compiled backend: plans are lowered once per ``(graph version, query
    signature, edge_order, injective)`` into flat kernels over interned
    CSR arrays (:mod:`repro.matching.program`), visiting exactly the
    candidates the interpreter visits -- ``steps`` totals are identical
    on unbounded evaluations.  ``compiled=None`` (the default) follows
    the ``REPRO_COMPILED_MATCH`` environment switch.  The compiled mode
    requires the typed adjacency; a ``typed_adjacency=False`` matcher
    always interprets, keeping the oracle configuration oracle-shaped.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        injective: bool = True,
        evalcache: Optional[EvaluationCache] = None,
        typed_adjacency: bool = True,
        compiled: Optional[bool] = None,
    ) -> None:
        self.graph = graph
        self.injective = injective
        self.evalcache = (
            evalcache if evalcache is not None else shared_evaluation_cache(graph)
        )
        self.typed_adjacency = typed_adjacency
        if compiled is None:
            compiled = _compiled_default()
        self.compiled = bool(compiled) and typed_adjacency
        #: number of match/count/exists invocations served
        self.calls = 0
        #: cumulative number of binding attempts (search effort)
        self.steps = 0

    def cache_info(self) -> "StatsReport":
        """Cache and compilation counters in the unified stats schema.

        Emits the :mod:`repro.stats` sections (``caches`` holds the
        ``plan`` and ``vertex_candidates`` layers, ``csr``/``programs``
        the compilation counters -- zeros until a compiled run).  The
        pre-unification keys (``cache_info()["plan"]``,
        ``cache_info()["programs"]["programs_compiled"]``, ...) stay
        readable for one release behind a :class:`DeprecationWarning`.
        """
        flat = csr_stats(self.graph)
        caches = {
            "plan": plan_cache_stats(self.graph).as_dict(),
            "vertex_candidates": self.evalcache.stats.as_dict(),
        }
        programs = StatsReport(
            programs_section(flat),
            legacy=flat,
            hints={key: "['programs']['compiled'/'hits'] or ['csr']" for key in flat},
            surface="cache_info()['programs']",
        )
        return unified_stats(
            caches=caches,
            csr=csr_section(flat),
            programs=programs,
            deltas=deltas_section(applied=flat.get("deltas_applied", 0)),
            extra={"matcher": {"calls": self.calls, "steps": self.steps}},
            legacy={
                "plan": caches["plan"],
                "vertex_candidates": caches["vertex_candidates"],
                "programs": programs,
            },
            hints={
                "plan": "['caches']['plan']",
                "vertex_candidates": "['caches']['vertex_candidates']",
                "programs": "['programs'] and ['csr']",
            },
            surface="cache_info()",
        )

    # -- compiled routing -------------------------------------------------------

    def _compiled_program(
        self, query: GraphQuery, edge_order: Optional[Sequence[int]]
    ) -> Optional[MatchProgram]:
        """The query's compiled program, or ``None`` when this call must
        take the interpreter (compiled mode off, empty query, or a plan
        shape the lowering does not support)."""
        if not self.compiled:
            return None
        query.validate()
        if query.num_vertices == 0:
            # the interpreter path returns the same empty result instantly
            return None
        try:
            return compiled_program(
                self.graph,
                query,
                edge_order,
                injective=self.injective,
                evalcache=self.evalcache,
            )
        except ProgramUnsupported:
            return None

    # -- public API -----------------------------------------------------------

    def match(
        self,
        query: GraphQuery,
        limit: Optional[int] = None,
        edge_order: Optional[Sequence[int]] = None,
        seed_restrict: Optional[AbstractSet[int]] = None,
    ) -> ResultSet:
        """Enumerate matches (up to ``limit``) as a :class:`ResultSet`.

        ``seed_restrict`` confines the *first* seed step's candidate pool
        to the given data vertices.  Every match binds the plan's first
        seed to exactly one data vertex, so restricting that pool to the
        blocks of a vertex partition splits the match set into disjoint
        per-block result sets whose union is the unrestricted result --
        the decomposition :mod:`repro.shard` fans out per shard.
        """
        self.calls += 1
        tracer = current_tracer()
        with tracer.span(SPAN_MATCH, op="match") as span:
            results = ResultSet()
            if limit is not None and limit <= 0:
                return results
            before = self.steps
            program = self._compiled_program(query, edge_order)
            if program is not None:
                emitted, steps = program.run_match(self.graph, limit, seed_restrict)
                self.steps += steps
                for binding in emitted:
                    results.add(binding)
            else:
                for binding in self._search(query, edge_order, seed_restrict):
                    results.add(binding)
                    if limit is not None and results.cardinality >= limit:
                        break
            if tracer.enabled:
                span.attributes["steps"] = self.steps - before
                span.attributes["compiled"] = program is not None
            return results

    def count(
        self,
        query: GraphQuery,
        limit: Optional[int] = None,
        edge_order: Optional[Sequence[int]] = None,
        seed_restrict: Optional[AbstractSet[int]] = None,
    ) -> int:
        """Count matches, stopping early once ``limit`` is reached.

        Result cardinality (Definition 2) when ``limit`` is ``None``.
        ``seed_restrict`` confines the first seed step (see :meth:`match`).
        """
        self.calls += 1
        tracer = current_tracer()
        with tracer.span(SPAN_MATCH, op="count") as span:
            before = self.steps
            program = self._compiled_program(query, edge_order)
            if program is not None:
                n, steps = program.run_count(self.graph, limit, seed_restrict)
                self.steps += steps
            else:
                n = 0
                for _ in self._search(query, edge_order, seed_restrict):
                    n += 1
                    if limit is not None and n >= limit:
                        break
            if tracer.enabled:
                span.attributes["steps"] = self.steps - before
                span.attributes["compiled"] = program is not None
            return n

    def exists(
        self,
        query: GraphQuery,
        edge_order: Optional[Sequence[int]] = None,
        seed_restrict: Optional[AbstractSet[int]] = None,
    ) -> bool:
        """``True`` when the pattern has at least one match."""
        self.calls += 1
        tracer = current_tracer()
        with tracer.span(SPAN_MATCH, op="exists"):
            program = self._compiled_program(query, edge_order)
            if program is not None:
                n, steps = program.run_count(self.graph, 1, seed_restrict)
                self.steps += steps
                return n > 0
            for _ in self._search(query, edge_order, seed_restrict):
                return True
            return False

    # -- search core -----------------------------------------------------------

    def _search(
        self,
        query: GraphQuery,
        edge_order: Optional[Sequence[int]] = None,
        seed_restrict: Optional[AbstractSet[int]] = None,
    ) -> Iterator[ResultGraph]:
        query.validate()
        if query.num_vertices == 0:
            return
        with current_tracer().span(SPAN_PLAN):
            plan = build_plan(self.graph, query, edge_order)
        vbind: Dict[int, int] = {}
        ebind: Dict[int, int] = {}
        used_vertices: Set[int] = set()
        used_edges: Set[int] = set()
        yield from self._step(
            query, plan, 0, vbind, ebind, used_vertices, used_edges, seed_restrict
        )

    def _step(
        self,
        query: GraphQuery,
        plan: List[PlanStep],
        depth: int,
        vbind: Dict[int, int],
        ebind: Dict[int, int],
        used_vertices: Set[int],
        used_edges: Set[int],
        seed_restrict: Optional[AbstractSet[int]] = None,
    ) -> Iterator[ResultGraph]:
        if depth == len(plan):
            yield ResultGraph.from_mappings(vbind, ebind)
            return
        step = plan[depth]
        if isinstance(step, SeedStep):
            # only the plan's *first* seed is partition-restricted: later
            # seeds (disconnected components) must stay exhaustive or the
            # per-shard union would drop cross-shard combinations
            yield from self._seed(
                query,
                plan,
                depth,
                step,
                vbind,
                ebind,
                used_vertices,
                used_edges,
                seed_restrict if depth == 0 else None,
            )
        else:
            yield from self._expand(
                query, plan, depth, step, vbind, ebind, used_vertices, used_edges
            )

    def _seed(
        self,
        query: GraphQuery,
        plan: List[PlanStep],
        depth: int,
        step: SeedStep,
        vbind: Dict[int, int],
        ebind: Dict[int, int],
        used_vertices: Set[int],
        used_edges: Set[int],
        seed_restrict: Optional[AbstractSet[int]] = None,
    ) -> Iterator[ResultGraph]:
        qvertex = query.vertex(step.vid)
        candidates = self.evalcache.vertex_candidates(qvertex)
        if seed_restrict is not None and candidates is not None:
            # pre-intersect so the walk below never visits foreign shards
            candidates = candidates & seed_restrict
            pool = candidates
        elif candidates is not None:
            pool = candidates
        elif seed_restrict is not None:
            # unconstrained vertex: the restriction *is* the pool
            pool = seed_restrict
        else:
            pool = self.graph.vertices()
        for data_vid in pool:
            self.steps += 1
            if self.injective and data_vid in used_vertices:
                continue
            # candidates are pre-filtered; restricted/full-scan pools are not
            if candidates is None and not vertex_matches(
                self.graph, data_vid, qvertex
            ):
                continue
            vbind[step.vid] = data_vid
            used_vertices.add(data_vid)
            yield from self._step(
                query, plan, depth + 1, vbind, ebind, used_vertices, used_edges
            )
            used_vertices.discard(data_vid)
            del vbind[step.vid]

    def _expand(
        self,
        query: GraphQuery,
        plan: List[PlanStep],
        depth: int,
        step: ExpandStep,
        vbind: Dict[int, int],
        ebind: Dict[int, int],
        used_vertices: Set[int],
        used_edges: Set[int],
    ) -> Iterator[ResultGraph]:
        qedge = query.edge(step.eid)
        anchor_data = vbind[step.anchor]
        anchor_is_source = step.anchor == qedge.source
        # the typed adjacency walk already filtered edge types, so only the
        # edge predicates remain to be checked per candidate
        type_prefiltered = self.typed_adjacency and qedge.types is not None

        for data_eid, data_other in self._incident_candidates(
            anchor_data, anchor_is_source, qedge
        ):
            self.steps += 1
            if self.injective and data_eid in used_edges:
                continue
            record = self.graph.edge(data_eid)
            if type_prefiltered:
                if qedge.predicates and not attributes_match(
                    record.attributes, qedge.predicates
                ):
                    continue
            elif not edge_matches(record, qedge):
                continue
            if step.new_vid is None:
                # Both endpoints bound: the edge must connect them.
                other_qvid = qedge.other_end(step.anchor)
                if vbind[other_qvid] != data_other:
                    continue
                ebind[step.eid] = data_eid
                used_edges.add(data_eid)
                yield from self._step(
                    query, plan, depth + 1, vbind, ebind, used_vertices, used_edges
                )
                used_edges.discard(data_eid)
                del ebind[step.eid]
            else:
                if self.injective and data_other in used_vertices:
                    continue
                if not vertex_matches(
                    self.graph, data_other, query.vertex(step.new_vid)
                ):
                    continue
                vbind[step.new_vid] = data_other
                ebind[step.eid] = data_eid
                used_vertices.add(data_other)
                used_edges.add(data_eid)
                yield from self._step(
                    query, plan, depth + 1, vbind, ebind, used_vertices, used_edges
                )
                used_edges.discard(data_eid)
                used_vertices.discard(data_other)
                del ebind[step.eid]
                del vbind[step.new_vid]

    def _incident_candidates(
        self,
        anchor_data: int,
        anchor_is_source: bool,
        qedge: QueryEdge,
    ) -> Iterator[tuple]:
        """Yield ``(data_eid, opposite_data_vid)`` pairs honouring directions.

        With the anchor bound to the query edge's *source*, a FORWARD
        direction walks the anchor's outgoing data edges and a BACKWARD
        direction its incoming ones; anchored at the *target* the roles
        swap.  When the query edge carries a type set, only the anchor's
        type-partitioned adjacency lists for those types are walked, so
        edges of other types are never visited (and never counted as
        ``steps``).
        """
        directions = qedge.directions
        want_out = (anchor_is_source and Direction.FORWARD in directions) or (
            not anchor_is_source and Direction.BACKWARD in directions
        )
        want_in = (anchor_is_source and Direction.BACKWARD in directions) or (
            not anchor_is_source and Direction.FORWARD in directions
        )
        graph = self.graph
        edge = graph.edge
        # sorted for deterministic enumeration order (frozenset iteration
        # varies with PYTHONHASHSEED; steps counters are reproducible records)
        types = (
            sorted(qedge.types)
            if self.typed_adjacency and qedge.types is not None
            else None
        )
        if want_out:
            if types is None:
                for eid in graph.out_edges(anchor_data):
                    yield eid, edge(eid).target
            else:
                for t in types:
                    for eid in graph.out_edges_of_type(anchor_data, t):
                        yield eid, edge(eid).target
        if want_in:
            if types is None:
                for eid in graph.in_edges(anchor_data):
                    record = edge(eid)
                    if want_out and record.source == record.target:
                        continue  # self-loop already yielded via the out walk
                    yield eid, record.source
            else:
                for t in types:
                    for eid in graph.in_edges_of_type(anchor_data, t):
                        record = edge(eid)
                        if want_out and record.source == record.target:
                            continue  # self-loop already yielded via the out walk
                        yield eid, record.source
