"""Shared evaluation caches for the matching/rewriting hot path.

The rewriting engines (Ch. 5-6) and the why-query engine (Sec. 3.1.3)
enumerate hundreds of *overlapping* query variants over one data graph:
most variants share almost all of their vertex predicates, and many are
re-evaluated by independently constructed matchers (priority-function
comparisons, preference-model rounds, the oracle runs of Sec. 5.5.4).

This module memoises the expensive per-call derivations so each graph
index is touched at most once per distinct constraint:

* :class:`EvaluationCache` caches ``vertex_candidates`` results by
  *predicate signature* (the vertex-id-independent part of
  :meth:`~repro.core.query.QueryVertex.signature`), shared between the
  matcher's seed enumeration, :class:`~repro.rewrite.statistics.GraphStatistics`
  and, transitively, :class:`~repro.rewrite.cache.QueryResultCache`.
* :func:`shared_evaluation_cache` hands out one cache per data graph (a
  weak registry), so every component bound to the same graph shares hits
  automatically without explicit plumbing.

Caches snapshot :attr:`PropertyGraph.version` and, when the graph's
delta log still holds the records between that snapshot and the current
version, *patch* their candidate sets record by record instead of
clearing: a new vertex joins every cached set whose retained predicate
map it satisfies, an attribute write re-evaluates exactly the sets
mentioning that attribute, and edge records are no-ops (candidate sets
are vertex-only).  The wholesale clear remains the fallback when the
ring has been overrun.  All caches expose :class:`CacheStats` hit/miss
counters; the harness reports them next to the matcher's
``calls``/``steps`` instrumentation.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, Optional

from repro.core.graph import PropertyGraph
from repro.core.query import QueryVertex
from repro.matching.candidates import attributes_match, vertex_candidates


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    size: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> "CacheStats":
        """Point-in-time copy (for delta reporting in the harness)."""
        return CacheStats(self.hits, self.misses, self.size)

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "hit_rate": self.hit_rate,
        }


def predicate_signature(qvertex: QueryVertex) -> Hashable:
    """Vertex-id-independent signature of a query vertex's predicates.

    Two query vertices with equal predicate maps share candidate sets
    regardless of their position in the query, so this is the cache key.
    """
    return tuple(
        sorted((a, p.signature()) for a, p in qvertex.predicates.items())
    )


class EvaluationCache:
    """Memoises per-predicate-signature candidate sets for one graph.

    The graph is held weakly: caches live as values of the per-graph
    registry, and a strong back-reference would keep every graph (and
    its cached candidate sets) alive for the process lifetime.
    """

    def __init__(self, graph: PropertyGraph) -> None:
        self._graph_ref = weakref.ref(graph)
        self._version = graph.version
        self._vertex_candidates: Dict[Hashable, Optional[FrozenSet[int]]] = {}
        #: signature -> the predicate map the entry was filled from,
        #: retained so a delta patch can re-test single vertices
        self._preds: Dict[Hashable, Dict[str, Any]] = {}
        self.stats = CacheStats()

    @property
    def graph(self) -> PropertyGraph:
        graph = self._graph_ref()
        if graph is None:  # pragma: no cover - caller must hold the graph
            raise ReferenceError("the cached graph has been garbage-collected")
        return graph

    def _validate(self, graph: PropertyGraph) -> None:
        if graph.version == self._version:
            return
        deltas_since = getattr(graph, "deltas_since", None)
        deltas = deltas_since(self._version) if deltas_since is not None else None
        if deltas is None:
            self._vertex_candidates.clear()
            self._preds.clear()
            self.stats.size = 0
        else:
            self._apply_deltas(graph, deltas)
        self._version = graph.version

    def _apply_deltas(self, graph: PropertyGraph, deltas) -> None:
        """Patch the cached candidate sets with a pending delta run.

        Entries are immutable shared frozensets, so membership changes
        *replace* the stored set rather than mutating it -- results
        already handed out keep describing the version they were
        computed at.  ``None`` entries (unconstrained vertices) stay
        ``None``: they mean "no filtering", which survives any
        mutation.  Halo-vertex records (``"hv"``) are skipped because
        candidate sets cover the owned range only.
        """
        entries = self._vertex_candidates
        preds_of = self._preds
        for record in deltas:
            kind = record[0]
            if kind == "v":
                vid, attrs = record[1], record[2]
                for key, entry in entries.items():
                    if entry is None:
                        continue
                    if attributes_match(attrs, preds_of[key]):
                        entries[key] = entry | {vid}
            elif kind == "va":
                vid, attr = record[1], record[2]
                attrs = graph.vertex_attributes(vid)
                for key, entry in entries.items():
                    if entry is None or attr not in preds_of[key]:
                        continue
                    if attributes_match(attrs, preds_of[key]):
                        if vid not in entry:
                            entries[key] = entry | {vid}
                    elif vid in entry:
                        entries[key] = entry - {vid}
            # "e" / "ea" / "hv": candidate sets are owned-vertex-only

    def vertex_candidates(self, qvertex: QueryVertex) -> Optional[FrozenSet[int]]:
        """Cached :func:`repro.matching.candidates.vertex_candidates`.

        ``None`` (unconstrained vertex) is cached like any other result.
        The returned frozensets are immutable snapshots, safe to share
        between the matcher, the statistics provider and the rewriters.
        """
        graph = self.graph
        self._validate(graph)
        key = predicate_signature(qvertex)
        try:
            result = self._vertex_candidates[key]
        except KeyError:
            self.stats.misses += 1
            result = vertex_candidates(graph, qvertex)
            self._vertex_candidates[key] = result
            self._preds[key] = dict(qvertex.predicates)
            self.stats.size = len(self._vertex_candidates)
            return result
        self.stats.hits += 1
        return result

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._vertex_candidates.clear()
        self._preds.clear()
        self.stats.size = 0

    def __len__(self) -> int:
        return len(self._vertex_candidates)


#: graph -> its process-wide shared evaluation cache
_SHARED_CACHES: "weakref.WeakKeyDictionary[PropertyGraph, EvaluationCache]" = (
    weakref.WeakKeyDictionary()
)


def shared_evaluation_cache(graph: PropertyGraph) -> EvaluationCache:
    """The per-graph shared :class:`EvaluationCache` (created on first use)."""
    cache = _SHARED_CACHES.get(graph)
    if cache is None:
        cache = EvaluationCache(graph)
        _SHARED_CACHES[graph] = cache
    return cache
