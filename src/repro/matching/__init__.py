"""Pattern-matching engine: candidates, planning, backtracking search."""

from repro.matching.candidates import (
    attributes_match,
    edge_matches,
    estimate_edge_candidates,
    estimate_vertex_candidates,
    vertex_candidates,
    vertex_matches,
)
from repro.matching.evalcache import (
    CacheStats,
    EvaluationCache,
    shared_evaluation_cache,
)
from repro.matching.matcher import PatternMatcher
from repro.matching.plan import ExpandStep, SeedStep, build_plan, plan_cache_stats

__all__ = [
    "CacheStats",
    "EvaluationCache",
    "ExpandStep",
    "PatternMatcher",
    "SeedStep",
    "attributes_match",
    "build_plan",
    "edge_matches",
    "estimate_edge_candidates",
    "estimate_vertex_candidates",
    "plan_cache_stats",
    "shared_evaluation_cache",
    "vertex_candidates",
    "vertex_matches",
]
