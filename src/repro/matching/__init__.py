"""Pattern-matching engine: candidates, planning, backtracking search,
and the compiled CSR/program backend."""

from repro.matching.candidates import (
    attributes_match,
    edge_matches,
    estimate_edge_candidates,
    estimate_vertex_candidates,
    vertex_candidates,
    vertex_matches,
)
from repro.matching.csr import CSRIndex, csr_for, csr_stats
from repro.matching.evalcache import (
    CacheStats,
    EvaluationCache,
    shared_evaluation_cache,
)
from repro.matching.matcher import PatternMatcher
from repro.matching.plan import ExpandStep, SeedStep, build_plan, plan_cache_stats
from repro.matching.program import MatchProgram, ProgramUnsupported, compiled_program

__all__ = [
    "CSRIndex",
    "CacheStats",
    "EvaluationCache",
    "ExpandStep",
    "MatchProgram",
    "PatternMatcher",
    "ProgramUnsupported",
    "SeedStep",
    "attributes_match",
    "build_plan",
    "compiled_program",
    "csr_for",
    "csr_stats",
    "edge_matches",
    "estimate_edge_candidates",
    "estimate_vertex_candidates",
    "plan_cache_stats",
    "shared_evaluation_cache",
    "vertex_candidates",
    "vertex_matches",
]
