"""Flat match programs: plans lowered to specialized nested-loop kernels.

The second layer of the compiled matching backend.  A ``(query
signature, edge_order, injective)`` plan from
:mod:`repro.matching.plan` is lowered *once* into a flat program over
the packed arrays of :mod:`repro.matching.csr` -- conceptually a
SEED / EXPAND / FILTER / EMIT op sequence:

* SEED   -- iterate an interned candidate pool of dense vertex indexes
  (the first seed's pool arrives as a run-time argument so
  ``seed_restrict`` stays a per-call range clamp);
* EXPAND -- scan the anchor's row slice of a ``(type, direction)`` CSR
  segment: candidate edge index and opposite endpoint come from two
  flat-array reads, so a typed query edge never visits edges of other
  types;
* FILTER -- one-byte bitset probes (interned predicate masks,
  injectivity scratch maps) plus the self-loop dedup and bound-endpoint
  equality tests, in exactly the interpreter's check order;
* EMIT   -- count, or construct the :class:`ResultGraph` binding tuple.

Rather than dispatching those ops through a loop, the lowering emits
them as Python source -- one specialized nested loop per program, with
every array bound as a default argument (locals, no per-step dict or
attribute lookups) -- and ``compile()``/``exec()`` turns them into a
callable kernel.  The kernel performs no allocation per step: scratch
bitsets are two ``bytearray`` blocks per call, and the enumeration
visits exactly the candidates the interpreter visits, so the ``steps``
counter of a compiled run equals the interpreter's on unbounded
evaluations (the differential invariant the tests pin down).

Programs are cached on the :class:`~repro.matching.csr.CSRIndex` they
are specialized over and die with it when the graph's mutation counter
moves.  On partial graphs (worker-side slices) a program guards every
expansion anchored at an unknown-adjacency vertex by raising the
slice's miss through the slice's own accessor -- never by silently
scanning an empty row.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import AbstractSet, Any, Dict, List, Optional, Sequence, Tuple

from repro.core.query import Direction, GraphQuery
from repro.core.result import ResultGraph
from repro.matching.csr import CSRIndex, csr_entry
from repro.matching.evalcache import EvaluationCache
from repro.matching.plan import ExpandStep, PlanStep, SeedStep, build_plan
from repro.obs.tracing import SPAN_PLAN, SPAN_PROGRAM_COMPILE, current_tracer

__all__ = ["MatchProgram", "ProgramUnsupported", "compiled_program"]

#: bound on the per-program seed-restrict pool memo (one entry per shard
#: of every partition granularity a program is driven under)
_RESTRICT_MEMO_ENTRIES = 64


class ProgramUnsupported(Exception):
    """The plan has a shape the lowering does not handle; the caller
    falls back to the interpreter (the correctness oracle)."""


class MatchProgram:
    """One plan, lowered and specialized over one :class:`CSRIndex`.

    Construction performs the lowering (interning every pool, mask and
    adjacency segment the plan touches, and generating the kernel
    source); the count and match kernels are compiled lazily on first
    use.  ``run_count`` / ``run_match`` return ``(value, steps)`` so the
    caller can fold the search effort into its own counters.
    """

    __slots__ = (
        "csr",
        "plan",
        "injective",
        "partial",
        "source",
        "_base_pool",
        "_restrict_pools",
        "_consts",
        "_body",
        "_rg_expr",
        "_count_fn",
        "_match_fn",
    )

    def __init__(
        self,
        csr: CSRIndex,
        plan: Sequence[PlanStep],
        query: GraphQuery,
        injective: bool = True,
        evalcache: Optional[EvaluationCache] = None,
    ) -> None:
        self.csr = csr
        #: the memoised plan this program lowers; the reference also pins
        #: the plan object alive while the program cache keys on its id
        self.plan = plan
        self.injective = injective
        self.partial = csr.partial
        self.source: Dict[str, str] = {}
        self._restrict_pools: Dict[frozenset, array] = {}
        self._count_fn: Optional[Any] = None
        self._match_fn: Optional[Any] = None
        self._lower(list(plan), query, evalcache)

    # -- lowering ---------------------------------------------------------------

    def _lower(
        self,
        plan: List[PlanStep],
        query: GraphQuery,
        evalcache: Optional[EvaluationCache],
    ) -> None:
        if not plan or not isinstance(plan[0], SeedStep):
            raise ProgramUnsupported("plan does not open with a seed step")
        csr = self.csr
        injective = self.injective
        consts: Dict[str, Any] = {}
        const_ids: Dict[int, str] = {}

        def const(prefix: str, value: Any) -> str:
            name = const_ids.get(id(value))
            if name is None:
                name = f"_{prefix}{len(consts)}"
                consts[name] = value
                const_ids[id(value)] = name
            return name

        body: List[str] = []
        vvar: Dict[int, str] = {}
        evar: Dict[int, str] = {}
        vid_name = const("vid", csr.vid_of)
        eid_name = const("eid", csr.eid_of)
        rg_name = const("RG", ResultGraph)
        self._base_pool = csr.seed_pool(query.vertex(plan[0].vid), evalcache)

        def gen(i: int, indent: int) -> None:
            pad = "    " * indent
            if i == len(plan):
                body.append(pad + "__EMIT__")
                return
            step = plan[i]
            if isinstance(step, SeedStep):
                v = f"v{len(vvar)}"
                vvar[step.vid] = v
                if i == 0:
                    # the first seed's pool is the run-time argument --
                    # that is the whole seed_restrict clamp seam
                    pool_expr = "pool"
                else:
                    pool_expr = const(
                        "pool", csr.seed_pool(query.vertex(step.vid), evalcache)
                    )
                body.append(f"{pad}for {v} in {pool_expr}:")
                inner = indent + 1
                ipad = "    " * inner
                body.append(f"{ipad}steps += 1")
                if injective and i > 0:
                    body.append(f"{ipad}if used_v[{v}]: continue")
                if injective:
                    body.append(f"{ipad}used_v[{v}] = 1")
                gen(i + 1, inner)
                if injective:
                    body.append(f"{ipad}used_v[{v}] = 0")
                return

            qedge = query.edge(step.eid)
            anchor_var = vvar[step.anchor]
            anchor_is_source = step.anchor == qedge.source
            directions = qedge.directions
            want_out = (anchor_is_source and Direction.FORWARD in directions) or (
                not anchor_is_source and Direction.BACKWARD in directions
            )
            want_in = (anchor_is_source and Direction.BACKWARD in directions) or (
                not anchor_is_source and Direction.FORWARD in directions
            )
            # sorted for deterministic segment order, like the interpreter
            types = sorted(qedge.types) if qedge.types is not None else [None]
            segments: List[Tuple[Tuple[array, array, array], bool]] = []
            if want_out:
                for t in types:
                    seg = csr.adjacency(t, "out")
                    if len(seg[1]):
                        segments.append((seg, False))
            if want_in:
                for t in types:
                    seg = csr.adjacency(t, "in")
                    if len(seg[1]):
                        # the out walk already yields self-loops; dedup
                        segments.append((seg, want_out))
            if self.partial:
                kn = const("kn", csr.known)
                body.append(
                    f"{pad}if not {kn}[{anchor_var}]: "
                    f"adjmiss({vid_name}[{anchor_var}])"
                )
            if not segments:
                # no data edge can ever match this step: dead subtree
                return
            emask = csr.edge_mask(qedge)
            em = const("em", emask) if emask is not None else None
            ev = f"e{len(evar)}"
            evar[step.eid] = ev
            sl_needed = any(skip for _, skip in segments)
            sl = const("sl", csr.selfloop) if sl_needed else None
            x = f"_x{i}"

            def candidate(indent: int, e_expr: str, o_expr: str, skip: Optional[str]):
                pad = "    " * indent
                body.append(f"{pad}{ev} = {e_expr}")
                if skip is not None:
                    body.append(f"{pad}if {skip}: continue")
                body.append(f"{pad}steps += 1")
                if injective:
                    body.append(f"{pad}if used_e[{ev}]: continue")
                if em is not None:
                    body.append(f"{pad}if not {em}[{ev}]: continue")
                if step.new_vid is None:
                    other_var = vvar[qedge.other_end(step.anchor)]
                    body.append(f"{pad}if {o_expr} != {other_var}: continue")
                    if injective:
                        body.append(f"{pad}used_e[{ev}] = 1")
                    gen(i + 1, indent)
                    if injective:
                        body.append(f"{pad}used_e[{ev}] = 0")
                else:
                    w = f"v{len(vvar)}"
                    vvar[step.new_vid] = w
                    body.append(f"{pad}{w} = {o_expr}")
                    if injective:
                        body.append(f"{pad}if used_v[{w}]: continue")
                    vmask = csr.vertex_mask(query.vertex(step.new_vid), evalcache)
                    if vmask is not None:
                        vm = const("vm", vmask)
                        body.append(f"{pad}if not {vm}[{w}]: continue")
                    if injective:
                        body.append(f"{pad}used_v[{w}] = 1")
                        body.append(f"{pad}used_e[{ev}] = 1")
                    gen(i + 1, indent)
                    if injective:
                        body.append(f"{pad}used_e[{ev}] = 0")
                        body.append(f"{pad}used_v[{w}] = 0")

            if len(segments) == 1:
                (indptr, edge_ix, other_ix), skip_self = segments[0]
                ip = const("ip", indptr)
                ea = const("ea", edge_ix)
                oa = const("oa", other_ix)
                body.append(
                    f"{pad}for {x} in range({ip}[{anchor_var}], "
                    f"{ip}[{anchor_var} + 1]):"
                )
                candidate(
                    indent + 1,
                    f"{ea}[{x}]",
                    f"{oa}[{x}]",
                    f"{sl}[{ev}]" if skip_self else None,
                )
            else:
                packed = const(
                    "segs",
                    tuple(
                        (ip_, ea_, oa_, 1 if skip else 0)
                        for (ip_, ea_, oa_), skip in segments
                    ),
                )
                sp, se, so, sk = f"_sp{i}", f"_se{i}", f"_so{i}", f"_sk{i}"
                body.append(f"{pad}for {sp}, {se}, {so}, {sk} in {packed}:")
                mid = indent + 1
                mpad = "    " * mid
                body.append(
                    f"{mpad}for {x} in range({sp}[{anchor_var}], "
                    f"{sp}[{anchor_var} + 1]):"
                )
                candidate(
                    mid + 1,
                    f"{se}[{x}]",
                    f"{so}[{x}]",
                    f"{sk} and {sl}[{ev}]" if sl_needed else None,
                )

        gen(0, 1)
        vparts = ", ".join(
            f"({qvid}, {vid_name}[{var}])" for qvid, var in sorted(vvar.items())
        )
        eparts = ", ".join(
            f"({qeid}, {eid_name}[{var}])" for qeid, var in sorted(evar.items())
        )
        vtuple = f"({vparts},)" if vparts else "()"
        etuple = f"({eparts},)" if eparts else "()"
        self._rg_expr = f"{rg_name}({vtuple}, {etuple})"
        self._consts = consts
        self._body = body

    # -- kernel compilation -----------------------------------------------------

    def _compile(self, mode: str) -> Any:
        lines: List[str] = []
        for line in self._body:
            stripped = line.lstrip()
            if stripped == "__EMIT__":
                pad = line[: len(line) - len(stripped)]
                if mode == "match":
                    lines.append(f"{pad}out_append({self._rg_expr})")
                lines.append(f"{pad}nmatch += 1")
                lines.append(f"{pad}if nmatch == limit: return nmatch, steps")
            else:
                lines.append(line)
        header = "def _kernel(pool, limit, used_v, used_e, out, adjmiss" + "".join(
            f", {name}={name}" for name in self._consts
        )
        preamble = ["    steps = 0", "    nmatch = 0"]
        if mode == "match":
            preamble.append("    out_append = out.append")
        src = "\n".join([header + "):"] + preamble + lines + ["    return nmatch, steps", ""])
        self.source[mode] = src
        namespace: Dict[str, Any] = {"range": range, **self._consts}
        exec(compile(src, f"<match-program:{mode}>", "exec"), namespace)
        return namespace["_kernel"]

    # -- seed pools -------------------------------------------------------------

    def _pool_for(self, seed_restrict: Optional[AbstractSet[int]]) -> array:
        if seed_restrict is None:
            return self._base_pool
        restrict = (
            seed_restrict
            if isinstance(seed_restrict, frozenset)
            else frozenset(seed_restrict)
        )
        pool = self._restrict_pools.get(restrict)
        if pool is None:
            pool = self._restricted_pool(restrict)
            if len(self._restrict_pools) >= _RESTRICT_MEMO_ENTRIES:
                self._restrict_pools.clear()
            self._restrict_pools[restrict] = pool
        return pool

    def _restricted_pool(self, restrict: frozenset) -> array:
        base = self._base_pool
        if not restrict or not len(base):
            return array("l")
        csr = self.csr
        vid_of = csr.vid_of
        lo, hi = min(restrict), max(restrict)
        a = bisect_left(vid_of, lo)
        b = bisect_right(vid_of, hi)
        ix_of = csr.ix_of
        if b - a == len(restrict) and all(vid in ix_of for vid in restrict):
            # the restriction is exactly the universe's contiguous vid
            # run [lo, hi] (every shard of the range partitioner is):
            # clamp the pool to the index range -- a pure slice copy
            pa = bisect_left(base, a)
            pb = bisect_right(base, b - 1)
            return base[pa:pb]
        return array("l", (ix for ix in base if vid_of[ix] in restrict))

    # -- execution --------------------------------------------------------------

    def _scratch(self) -> Tuple[Optional[bytearray], Optional[bytearray]]:
        if not self.injective:
            return None, None
        return bytearray(self.csr.num_vertices), bytearray(self.csr.num_edges)

    def run_count(
        self,
        graph: Any,
        limit: Optional[int] = None,
        seed_restrict: Optional[AbstractSet[int]] = None,
    ) -> Tuple[int, int]:
        """Bounded match count: ``(count, steps)``."""
        fn = self._count_fn
        if fn is None:
            fn = self._count_fn = self._compile("count")
        if limit is None:
            prog_limit = 0  # nmatch starts at 1 on first emit: never equal
        elif limit <= 0:
            prog_limit = 1  # the interpreter's count() stops after one match
        else:
            prog_limit = limit
        used_v, used_e = self._scratch()
        adjmiss = graph._cell if self.partial else None
        return fn(self._pool_for(seed_restrict), prog_limit, used_v, used_e, None, adjmiss)

    def run_match(
        self,
        graph: Any,
        limit: Optional[int] = None,
        seed_restrict: Optional[AbstractSet[int]] = None,
    ) -> Tuple[List[ResultGraph], int]:
        """Bounded enumeration: ``(result graphs, steps)``."""
        out: List[ResultGraph] = []
        if limit is not None and limit <= 0:
            return out, 0
        fn = self._match_fn
        if fn is None:
            fn = self._match_fn = self._compile("match")
        prog_limit = 0 if limit is None else limit
        used_v, used_e = self._scratch()
        adjmiss = graph._cell if self.partial else None
        _, steps = fn(self._pool_for(seed_restrict), prog_limit, used_v, used_e, out, adjmiss)
        return out, steps


def compiled_program(
    graph: Any,
    query: GraphQuery,
    edge_order: Optional[Sequence[int]] = None,
    injective: bool = True,
    evalcache: Optional[EvaluationCache] = None,
) -> MatchProgram:
    """The cached program for ``(graph version, query signature,
    edge_order, injective)``, lowering it on first request.

    Resolution goes *through* the plan cache: the plan is the memoised
    pure function of ``(graph, query signature, edge_order)`` already,
    so the program cache keys on the query signature plus the plan's
    step content, extended by the injectivity mode the kernel is
    specialized for (steps are frozen dataclasses, so equal plans for
    the same query -- including ones the delta-scoped plan cache
    re-derived after a statistics change -- share one compiled
    kernel).  Plan-cache hit counters
    therefore keep reporting variant reuse exactly as on the interpreter
    path.  The program cache lives on the
    :class:`~repro.matching.csr.CSRIndex`.  When a mutation is patched
    into the index in place (:meth:`CSRIndex.apply_deltas`) the
    programs survive -- their bound arrays are the very objects the
    patch extended; only a full rebuild (or an empty adjacency segment
    turning non-empty, which invalidates lowered pruning decisions)
    discards them.
    """
    entry = csr_entry(graph)
    tracer = current_tracer()
    with tracer.span(SPAN_PLAN):
        plan = build_plan(graph, query, edge_order)
    # key on the query's signature *and* the plan's step content (steps
    # are frozen dataclasses): a plan the delta-scoped cache dropped and
    # re-derived identically maps back to its already-compiled kernel,
    # while same-shaped queries with different predicates -- whose plans
    # carry only vertex/edge ids -- never collide
    key = (query.signature(), tuple(plan), injective)
    program = entry.csr.programs.get(key)
    if program is None:
        with tracer.span(SPAN_PROGRAM_COMPILE):
            program = MatchProgram(entry.csr, plan, query, injective, evalcache)
        entry.csr.programs[key] = program
        entry.programs_compiled += 1
    else:
        entry.program_hits += 1
    return program
