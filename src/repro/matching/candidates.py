"""Candidate computation and predicate evaluation for pattern matching.

The matcher prunes its search with per-query-vertex candidate sets derived
from the property graph's secondary indexes.  A query vertex without any
predicate is *unconstrained*; its candidate set is represented by ``None``
so the matcher never materialises "all vertices" unless it has to seed a
new connected component there.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Mapping, Optional

from repro.core.graph import EdgeRecord, PropertyGraph
from repro.core.predicates import Predicate, ValueSet
from repro.core.query import QueryEdge, QueryVertex


def attributes_match(
    attributes: Mapping[str, Any], predicates: Mapping[str, Predicate]
) -> bool:
    """Evaluate a predicate map against an attribute map.

    A predicate on an attribute the element does not carry fails: the
    property-graph model treats predicates as assertions about present
    attribute values.
    """
    for attr, pred in predicates.items():
        if attr not in attributes:
            return False
        if not pred.matches(attributes[attr]):
            return False
    return True


def vertex_matches(graph: PropertyGraph, vid: int, qvertex: QueryVertex) -> bool:
    """Check one data vertex against one query vertex's predicates."""
    return attributes_match(graph.vertex_attributes(vid), qvertex.predicates)


def edge_matches(record: EdgeRecord, qedge: QueryEdge) -> bool:
    """Check one data edge against a query edge's type set and predicates.

    Direction handling is the matcher's job; this checks content only.
    """
    if qedge.types is not None and record.type not in qedge.types:
        return False
    return attributes_match(record.attributes, qedge.predicates)


def vertex_candidates(
    graph: PropertyGraph, qvertex: QueryVertex
) -> Optional[FrozenSet[int]]:
    """Candidate data vertices for a query vertex, or ``None`` if unconstrained.

    Strategy: among the vertex's :class:`ValueSet` predicates, pick the one
    whose index union is smallest, then filter that union by the remaining
    predicates.  Vertices constrained only by non-enumerable predicates
    (e.g. open intervals) fall back to a full scan.
    """
    preds = qvertex.predicates
    if not preds:
        return None

    best_attr: Optional[str] = None
    best_union: Optional[FrozenSet[int]] = None
    for attr, pred in preds.items():
        if isinstance(pred, ValueSet):
            # accumulate into one mutable set, freeze once: |= on a
            # frozenset would copy the growing union per value
            acc: set = set()
            for value in pred.values:
                acc.update(graph.vertices_with(attr, value))
            union = frozenset(acc)
            if best_union is None or len(union) < len(best_union):
                best_attr, best_union = attr, union

    if best_union is not None:
        rest = {a: p for a, p in preds.items() if a != best_attr}
        if not rest:
            return best_union
        return frozenset(
            vid
            for vid in best_union
            if attributes_match(graph.vertex_attributes(vid), rest)
        )

    # Full scan fallback (interval-only constraints).
    return frozenset(
        vid for vid in graph.vertices() if attributes_match(graph.vertex_attributes(vid), preds)
    )


def estimate_vertex_candidates(graph: PropertyGraph, qvertex: QueryVertex) -> int:
    """Cheap upper-bound estimate of a vertex's candidate count.

    Used by the search planner (and by the Sec. 5.2 statistics provider)
    without paying for the exact filtered set.
    """
    preds = qvertex.predicates
    if not preds:
        return graph.num_vertices
    best = graph.num_vertices
    for attr, pred in preds.items():
        if isinstance(pred, ValueSet):
            total = sum(graph.num_vertices_with(attr, v) for v in pred.values)
            best = min(best, total)
    return best


def estimate_edge_candidates(graph: PropertyGraph, qedge: QueryEdge) -> int:
    """Cheap upper-bound estimate of an edge's candidate count (by type).

    Uses the O(1) per-type counts; no edge-type histogram is rebuilt.
    """
    if qedge.types is None:
        return graph.num_edges
    return sum(graph.num_edges_of_type(t) for t in qedge.types)
