"""Search-order planning for the backtracking matcher.

A plan is a sequence of steps.  ``SeedStep`` binds the first vertex of a
connected component by enumerating its candidates; ``ExpandStep`` matches
one query edge from an already-bound anchor vertex, possibly binding the
opposite endpoint.  Isolated query vertices become seeds of their own.

The planner orders components and edges by estimated selectivity so cheap,
highly-constrained elements are matched first (the classic "fail fast"
ordering the GRAPHITE executor used); a caller-supplied ``edge_order`` can
override this, which is how the Ch. 4 traversal-path selection steers the
evaluation.

Plans are pure functions of ``(graph, query signature, edge_order)``, so
they are memoised in a per-graph cache: the rewriting engines re-evaluate
the same query variants through independently constructed matchers
(priority comparisons, preference rounds), and repeated evaluation of a
variant must not re-pay selectivity estimation.  The cache snapshots the
graph's mutation counter; when the graph moves, invalidation is
*delta-scoped*: plans pinned by an explicit ``edge_order`` are
statistics-independent and always survive, and selectivity-ordered
plans are dropped only when the pending delta run touches an attribute
or edge type their query depends on (see :mod:`repro.core.delta`).
With no delta log (or a ring overrun) the wholesale clear remains the
fallback.  :func:`plan_cache_stats` exposes hit/miss counters to the
harness.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.delta import (
    QueryTouchProfile,
    delta_touch,
    query_touch_profile,
    touch_affects_query,
)
from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.matching.candidates import (
    estimate_edge_candidates,
    estimate_vertex_candidates,
)
from repro.matching.evalcache import CacheStats


@dataclass(frozen=True)
class SeedStep:
    """Bind query vertex ``vid`` by enumerating its candidates."""

    vid: int


@dataclass(frozen=True)
class ExpandStep:
    """Match query edge ``eid`` anchored at the bound vertex ``anchor``.

    ``new_vid`` is the opposite endpoint when it is not bound yet, else
    ``None`` (the edge then only checks consistency between two bound
    vertices).
    """

    eid: int
    anchor: int
    new_vid: Optional[int]


PlanStep = Union[SeedStep, ExpandStep]


class _PlanCache:
    """Per-graph memo of built plans, keyed by (query signature, order)."""

    __slots__ = ("version", "entries", "profiles", "wires", "stats")

    def __init__(self, version: int) -> None:
        self.version = version
        self.entries: Dict[Hashable, List[PlanStep]] = {}
        #: key -> touch profile of the query the plan was built for
        self.profiles: Dict[Hashable, QueryTouchProfile] = {}
        #: key -> wire form of the query (externalization: a signature
        #: key is not invertible, so persistence keeps the query too)
        self.wires: Dict[Hashable, Tuple] = {}
        self.stats = CacheStats()


_PLAN_CACHES: "weakref.WeakKeyDictionary[PropertyGraph, _PlanCache]" = (
    weakref.WeakKeyDictionary()
)


def _plan_cache(graph: PropertyGraph) -> _PlanCache:
    cache = _PLAN_CACHES.get(graph)
    if cache is None:
        cache = _PlanCache(graph.version)
        _PLAN_CACHES[graph] = cache
    elif cache.version != graph.version:
        deltas_since = getattr(graph, "deltas_since", None)
        deltas = deltas_since(cache.version) if deltas_since is not None else None
        if deltas is None:
            cache.entries.clear()
            cache.profiles.clear()
            cache.wires.clear()
        else:
            # Pinned edge_order plans (key[1] is not None) are pure
            # functions of the query and always survive.  Selectivity
            # plans survive unless the delta touches their statistics;
            # a kept-but-suboptimal ordering stays *correct* -- only
            # its fail-fast quality could lag the new statistics.
            touch = delta_touch(deltas)
            stale = [
                key
                for key, profile in cache.profiles.items()
                if key[1] is None and touch_affects_query(touch, profile)
            ]
            for key in stale:
                del cache.entries[key]
                del cache.profiles[key]
                cache.wires.pop(key, None)
        cache.version = graph.version
        cache.stats.size = len(cache.entries)
    return cache


def plan_cache_stats(graph: PropertyGraph) -> CacheStats:
    """Hit/miss counters of the graph's plan cache (harness reporting)."""
    return _plan_cache(graph).stats


def build_plan(
    graph: PropertyGraph,
    query: GraphQuery,
    edge_order: Optional[Sequence[int]] = None,
) -> List[PlanStep]:
    """Produce a connected, selectivity-ordered evaluation plan (memoised).

    ``edge_order`` forces the given query-edge processing order (edges must
    form a valid traversal; seeds are inserted automatically whenever the
    next edge touches no bound vertex).  Repeated calls for the same
    ``(graph, query signature, edge_order)`` return the cached plan; plans
    are immutable step sequences, so sharing them is safe.
    """
    cache = _plan_cache(graph)
    key: Tuple[Hashable, Optional[Tuple[int, ...]]] = (
        query.signature(),
        tuple(edge_order) if edge_order is not None else None,
    )
    cached = cache.entries.get(key)
    if cached is not None:
        cache.stats.hits += 1
        return cached
    cache.stats.misses += 1
    plan = _build_plan_uncached(graph, query, edge_order)
    cache.entries[key] = plan
    cache.profiles[key] = query_touch_profile(query)
    cache.wires[key] = _query_wire(query)
    cache.stats.size = len(cache.entries)
    return plan


def _query_wire(query: GraphQuery) -> Tuple:
    from repro.core.serialize import query_to_wire

    return query_to_wire(query)


def export_plans(
    graph: PropertyGraph,
) -> List[Tuple[GraphQuery, Optional[Tuple[int, ...]], List[PlanStep]]]:
    """Snapshot the graph's plan cache as ``(query, edge_order, steps)``.

    The cache is validated (delta-scoped) first, so the export is
    consistent with ``graph.version`` at return time.  Entries without a
    retained query wire form (pre-seam inserts) are skipped.
    """
    from repro.core.serialize import query_from_wire

    cache = _plan_cache(graph)
    out: List[Tuple[GraphQuery, Optional[Tuple[int, ...]], List[PlanStep]]] = []
    for key, steps in cache.entries.items():
        wire = cache.wires.get(key)
        if wire is None:
            continue
        out.append((query_from_wire(wire), key[1], list(steps)))
    return out


def restore_plans(
    graph: PropertyGraph,
    items: Iterable[Tuple[GraphQuery, Optional[Sequence[int]], Sequence[PlanStep]]],
) -> int:
    """Insert externally persisted plans; returns how many landed.

    A live entry for the same key wins.  Every candidate plan is
    re-validated against its query (:func:`plan_covers_query`) before
    insertion: a plan that does not cover the query exactly would make
    the matcher silently skip constraints, so a snapshot -- however it
    decayed on disk -- can cost warmth, never correctness.
    """
    cache = _plan_cache(graph)
    restored = 0
    for query, edge_order, steps in items:
        plan = list(steps)
        if not plan_covers_query(query, plan):
            continue
        key = (
            query.signature(),
            tuple(edge_order) if edge_order is not None else None,
        )
        if key in cache.entries:
            continue
        cache.entries[key] = plan
        cache.profiles[key] = query_touch_profile(query)
        cache.wires[key] = _query_wire(query)
        restored += 1
    cache.stats.size = len(cache.entries)
    return restored


def plan_covers_query(query: GraphQuery, steps: Sequence[PlanStep]) -> bool:
    """Is ``steps`` a complete, well-anchored plan for ``query``?

    Checks exactly the invariants :func:`build_plan` guarantees: every
    step references live query elements, expansions anchor on an
    already-bound vertex and bind the edge's other endpoint (or close
    between two bound vertices), and the plan covers every query edge
    exactly once and binds every query vertex.
    """
    bound: Set[int] = set()
    seen_edges: Set[int] = set()
    for step in steps:
        if isinstance(step, SeedStep):
            if not query.has_vertex(step.vid) or step.vid in bound:
                return False
            bound.add(step.vid)
        elif isinstance(step, ExpandStep):
            if not query.has_edge(step.eid) or step.eid in seen_edges:
                return False
            edge = query.edge(step.eid)
            if step.anchor not in bound:
                return False
            if step.anchor not in (edge.source, edge.target):
                return False
            if step.new_vid is None:
                if edge.source not in bound or edge.target not in bound:
                    return False
            else:
                if step.new_vid in bound:
                    return False
                expected = _unbound_end(edge.source, edge.target, bound)
                if step.new_vid != expected:
                    return False
                bound.add(step.new_vid)
            seen_edges.add(step.eid)
        else:
            return False
    return seen_edges == query.edge_ids and bound == query.vertex_ids


def _build_plan_uncached(
    graph: PropertyGraph,
    query: GraphQuery,
    edge_order: Optional[Sequence[int]] = None,
) -> List[PlanStep]:
    if edge_order is not None:
        return _plan_from_edge_order(query, list(edge_order))

    selectivity: Dict[int, int] = {
        v.vid: estimate_vertex_candidates(graph, v) for v in query.vertices()
    }
    edge_cost: Dict[int, int] = {
        e.eid: estimate_edge_candidates(graph, e) for e in query.edges()
    }

    steps: List[PlanStep] = []
    bound: Set[int] = set()
    remaining_edges: Set[int] = set(query.edge_ids)
    remaining_vertices: Set[int] = set(query.vertex_ids)

    while remaining_edges or remaining_vertices:
        frontier = [
            eid
            for eid in remaining_edges
            if query.edge(eid).source in bound or query.edge(eid).target in bound
        ]
        if frontier:
            # Cheapest expansion first: prefer edges whose unbound endpoint
            # is selective and whose type is rare.
            def expansion_cost(eid: int) -> tuple:
                edge = query.edge(eid)
                new_vid = _unbound_end(edge.source, edge.target, bound)
                vertex_part = selectivity[new_vid] if new_vid is not None else 0
                return (vertex_part, edge_cost[eid], eid)

            eid = min(frontier, key=expansion_cost)
            edge = query.edge(eid)
            anchor = edge.source if edge.source in bound else edge.target
            new_vid = _unbound_end(edge.source, edge.target, bound)
            steps.append(ExpandStep(eid, anchor, new_vid))
            remaining_edges.discard(eid)
            if new_vid is not None:
                bound.add(new_vid)
                remaining_vertices.discard(new_vid)
            continue

        # No edge touches a bound vertex: seed a new component at its most
        # selective vertex.
        seed = min(remaining_vertices, key=lambda vid: (selectivity[vid], vid))
        steps.append(SeedStep(seed))
        bound.add(seed)
        remaining_vertices.discard(seed)

    return steps


def _unbound_end(source: int, target: int, bound: Set[int]) -> Optional[int]:
    if source not in bound:
        return source
    if target not in bound:
        return target
    return None


def _plan_from_edge_order(query: GraphQuery, edge_order: List[int]) -> List[PlanStep]:
    """Turn an explicit edge sequence into a plan with automatic seeding."""
    steps: List[PlanStep] = []
    bound: Set[int] = set()
    for eid in edge_order:
        edge = query.edge(eid)
        if edge.source not in bound and edge.target not in bound:
            steps.append(SeedStep(edge.source))
            bound.add(edge.source)
        anchor = edge.source if edge.source in bound else edge.target
        new_vid = _unbound_end(edge.source, edge.target, bound)
        steps.append(ExpandStep(eid, anchor, new_vid))
        if new_vid is not None:
            bound.add(new_vid)
    # Isolated vertices (and vertices untouched by edge_order) become seeds.
    for vid in sorted(query.vertex_ids - bound):
        steps.append(SeedStep(vid))
        bound.add(vid)
    covered = {s.eid for s in steps if isinstance(s, ExpandStep)}
    missing = query.edge_ids - covered
    if missing:
        raise ValueError(f"edge_order misses query edges: {sorted(missing)}")
    return steps
