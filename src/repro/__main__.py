"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    Run the quickstart debugging story on a generated social network
    through a :class:`~repro.service.WhyQueryService` (the long-lived
    serving entry point), and print the service's cache/throughput
    counters afterwards.
``experiments [--dataset ldbc|dbpedia] [ids...]``
    Regenerate evaluation tables (default: the fast ones).  Available
    ids: tabA, fig4, fig5, fig5-user, fig6, fig6-topo, appB.
``datasets``
    Print the generated data-set inventory (Table A.1).
``serve [--host H] [--port P] [--metrics-port M] [--with-ldbc]
[--persist-dir D] [--allow-remote-shutdown]``
    Run the why-query protocol server in the foreground (see
    ``docs/protocol.md``); ``--with-ldbc`` preloads the generated LDBC
    social network under the graph name ``ldbc``; ``--metrics-port``
    additionally serves the Prometheus text exposition of the metrics
    registry over plain HTTP (``GET /metrics``); ``--persist-dir``
    switches on warm-restart persistence -- caches and the slow-query
    log snapshot into the directory and a restarted server prewarms
    from it (see ``docs/persistence.md``).
``slowlog [--host H] [--port P] [--limit N]``
    Connect to a running server and print its slow-query log, slowest
    explain first (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_demo(_: argparse.Namespace) -> int:
    from repro.datasets import ldbc
    from repro.service import WhyQueryService

    network = ldbc.generate()
    print(f"generated social network: {network.graph}")
    failed = ldbc.empty_variant("LDBC QUERY 2")
    print("\nfailed query:")
    print(failed.describe())
    service = WhyQueryService()
    report = service.explain(network.graph, failed)
    print()
    print(report.summary())
    # a second request over the same graph runs against the warm context
    service.explain(network.graph, failed, explain=False)
    stats = service.stats()
    results = stats["caches"]["results"]
    print()
    print(
        f"[service: {stats['service']['requests']} requests, "
        f"{stats['service']['contexts_live']} warm context(s), "
        f"result cache {results['hits']} hits / "
        f"{results['misses']} misses]"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import WhyQueryProtocolServer

    graphs = {}
    if args.with_ldbc:
        from repro.datasets import ldbc

        graphs["ldbc"] = ldbc.generate().graph

    service = None
    if args.persist_dir is not None:
        from repro.service import WhyQueryService

        service = WhyQueryService(persist=args.persist_dir)

    server = WhyQueryProtocolServer(
        service=service,
        graphs=graphs,
        host=args.host,
        port=args.port,
        allow_shutdown=args.allow_remote_shutdown,
    )

    metrics_handle = None
    if args.metrics_port is not None:
        from repro.obs import start_metrics_server

        metrics_handle = start_metrics_server(port=args.metrics_port, host=args.host)
        host, port = metrics_handle.address
        print(f"metrics endpoint on http://{host}:{port}/metrics", flush=True)

    def _announce(address) -> None:
        print(f"whyquery server listening on {address[0]}:{address[1]}", flush=True)

    try:
        asyncio.run(server.run(on_started=_announce))
    except KeyboardInterrupt:
        pass
    finally:
        if metrics_handle is not None:
            metrics_handle.close()
    return 0


def _cmd_slowlog(args: argparse.Namespace) -> int:
    from repro.client import connect

    with connect(args.host, args.port) as client:
        entries = client.slow_queries(limit=args.limit)
    if not entries:
        print("slow-query log is empty")
        return 0
    for rank, entry in enumerate(entries, start=1):
        flags = []
        if entry.get("budget_truncated"):
            flags.append("budget-truncated")
        if entry.get("shard_fallbacks"):
            flags.append(f"{entry['shard_fallbacks']} shard fallback(s)")
        if not entry.get("traced"):
            flags.append("untraced")
        cache = entry.get("cache", {})
        print(
            f"#{rank} {entry['elapsed_s'] * 1000.0:.2f} ms  "
            f"problem={entry.get('problem')}  "
            f"steps={entry.get('matcher_steps')}  "
            f"cache={cache.get('hits', 0)}h/{cache.get('misses', 0)}m"
            + (f"  [{', '.join(flags)}]" if flags else "")
        )
        print(f"   signature: {entry.get('signature', '')[:100]}")
        profile = entry.get("profile") or {}
        if profile:
            parts = [
                f"{kind}:{agg['count']}x {agg['total_s'] * 1000.0:.2f}ms"
                for kind, agg in sorted(profile.items())
            ]
            print(f"   spans: {'  '.join(parts)}")
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    from repro.harness import format_table, tabA_datasets

    rows = tabA_datasets()
    print(
        format_table(
            ["dataset", "query", "|V|", "|E|", "qV", "qE", "C1"],
            [
                (
                    r.dataset,
                    r.query,
                    r.vertices,
                    r.edges,
                    r.query_vertices,
                    r.query_edges,
                    r.cardinality,
                )
                for r in rows
            ],
            title="Table A.1: data sets and queries",
        )
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.harness import (
        appB_resources,
        fig4_discovermcs,
        fig5_priorities,
        fig5_user_integration,
        fig6_baselines,
        fig6_topology,
        format_table,
        tabA_datasets,
    )

    dataset = args.dataset
    wanted = args.ids or ["tabA", "fig4", "fig5", "appB"]

    if "tabA" in wanted:
        _cmd_datasets(args)
        print()
    if "fig4" in wanted:
        rows = fig4_discovermcs(dataset)
        print(
            format_table(
                ["query", "strategy", "coverage", "evals", "sec"],
                [(r.query, r.strategy, r.coverage, r.evaluations, r.elapsed) for r in rows],
                title=f"Sec. 4.5.1 DISCOVERMCS ({dataset})",
            )
        )
        print()
    if "fig5" in wanted:
        rows = fig5_priorities(dataset)
        print(
            format_table(
                ["query", "priority", "evaluated", "syntactic"],
                [(r.query, r.priority, r.evaluated, r.best_syntactic) for r in rows],
                title=f"Sec. 5.5.1 priority functions ({dataset})",
            )
        )
        print()
    if "fig5-user" in wanted:
        rows = fig5_user_integration(dataset)
        print(
            format_table(
                ["query", "without model", "with model"],
                [
                    (r.query, r.proposals_without_model, r.proposals_with_model)
                    for r in rows
                ],
                title=f"Sec. 5.5.4 user integration ({dataset})",
            )
        )
        print()
    if "fig6" in wanted:
        rows = fig6_baselines(dataset)
        print(
            format_table(
                ["scenario", "engine", "converged", "distance", "evals"],
                [
                    (r.scenario, r.engine, r.converged, r.distance, r.evaluated)
                    for r in rows
                ],
                title=f"Sec. 6.4.2 baselines ({dataset})",
            )
        )
        print()
    if "fig6-topo" in wanted:
        rows = fig6_topology(dataset)
        print(
            format_table(
                ["scenario", "engine", "converged", "distance"],
                [(r.scenario, r.engine, r.converged, r.distance) for r in rows],
                title=f"Sec. 6.4.3 topology consideration ({dataset})",
            )
        )
        print()
    if "appB" in wanted:
        rows = appB_resources(dataset)
        print(
            format_table(
                [
                    "query",
                    "evaluated",
                    "generated",
                    "cache entries",
                    "plan hits",
                    "cand hits",
                    "cand rate",
                    "steps",
                ],
                [
                    (
                        r.query,
                        r.evaluated,
                        r.generated,
                        r.cache_entries,
                        r.plan_hits,
                        r.candidate_hits,
                        r.candidate_hit_rate,
                        r.matcher_steps,
                    )
                    for r in rows
                ],
                title=f"App. B.2 resources ({dataset})",
            )
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Why-query support in graph databases (reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the quickstart debugging story")
    commands.add_parser("datasets", help="print the data-set inventory")
    serve = commands.add_parser("serve", help="run the protocol server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--persist-dir",
        default=None,
        help=(
            "warm-restart persistence directory: caches and the "
            "slow-query log snapshot here on shutdown/eviction and "
            "prewarm from it on start (docs/persistence.md)"
        ),
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve Prometheus metrics over HTTP on this port (0 = ephemeral)",
    )
    serve.add_argument(
        "--with-ldbc",
        action="store_true",
        help="preload the generated LDBC graph as 'ldbc'",
    )
    serve.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="honour the protocol 'shutdown' message (CI smoke jobs)",
    )
    slowlog = commands.add_parser(
        "slowlog", help="print a running server's slow-query log"
    )
    slowlog.add_argument("--host", default="127.0.0.1")
    slowlog.add_argument("--port", type=int, default=8642)
    slowlog.add_argument(
        "--limit", type=int, default=None, help="show at most N entries"
    )
    exp = commands.add_parser("experiments", help="regenerate evaluation tables")
    exp.add_argument("--dataset", choices=("ldbc", "dbpedia"), default="ldbc")
    exp.add_argument(
        "ids",
        nargs="*",
        help="experiment ids (tabA, fig4, fig5, fig5-user, fig6, fig6-topo, appB)",
    )

    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "datasets": _cmd_datasets,
        "experiments": _cmd_experiments,
        "serve": _cmd_serve,
        "slowlog": _cmd_slowlog,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
