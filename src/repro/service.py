"""Long-lived why-query service: shared contexts across requests.

The ROADMAP's north star is a process that debugs queries for *many*
users over a handful of hot graphs.  One-shot engine construction per
request throws the shared evaluation state away between requests; the
:class:`WhyQueryService` keeps it:

* a bounded pool of per-graph :class:`~repro.exec.context.ExecutionContext`
  instances (least-recently-used graph evicted first), so every
  ``explain()``/``open_session()`` call over the same graph reuses the
  matcher, the query-result cache, the statistics and the candidate-set
  cache warmed by earlier requests;
* thread-safe request handling -- the pool is lock-protected, and the
  evaluation stack underneath keeps all per-call state on the stack, so
  concurrent ``explain()`` calls over the same graph are safe (CPython
  dict/counter mutation is atomic under the GIL);
* optional batched candidate evaluation: give the service a
  :class:`~repro.exec.evaluator.ParallelExecutor` (thread overlap) or an
  :class:`~repro.exec.async_executor.AsyncExecutor` (event-loop overlap
  under an in-flight cap) and every rewriting search it runs drains its
  candidates in executor-sized batches;
* **CPU-parallel evaluation** with ``executor="process"``: every pooled
  graph gets its own :class:`~repro.shard.ProcessExecutor` (a warm
  worker-process pool built from a snapshot of that graph, optionally
  sharded via ``shards=N``), created with the graph's pool slot and
  shut down on eviction -- pure-Python rewriting work finally scales
  with cores instead of stalling on the coordinator's GIL;
* a **native async front door** -- :meth:`WhyQueryService.explain_async`
  / :meth:`WhyQueryService.open_session_async` -- so an asyncio
  deployment can keep thousands of why-queries in flight: requests
  occupy one slot of a bounded request pool while their *candidate
  counts* overlap on the executor's event loop without one thread per
  count;
* **service-level admission control**: a :class:`BudgetPool` carves a
  per-request :class:`~repro.exec.evaluator.EvaluationBudget` out of a
  bounded global evaluation pool (fair-share split across the requests
  currently active, returned on completion), so total work stays bounded
  under heavy traffic -- overload degrades to smaller per-request search
  budgets, queued admissions, and finally :class:`AdmissionRejected`;
* aggregated cache/throughput/admission counters over all live contexts
  (:meth:`WhyQueryService.stats`), the service-level equivalent of
  :meth:`ExecutionContext.cache_report`.

>>> service = WhyQueryService(max_contexts=4, budget_pool=BudgetPool(2000))
>>> report = service.explain(graph, failed_query)       # request 1
>>> session = service.open_session(graph, failed_query) # request 2, warm
>>> service.stats()["service"]["explain_calls"]
1
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Union

from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.exec.context import ExecutionContext
from repro.exec.evaluator import BatchExecutor, EvaluationBudget
from repro.metrics.cardinality import CardinalityThreshold
from repro.obs import (
    NULL_TRACER,
    REGISTRY,
    SPAN_ADMISSION,
    SPAN_EXPLAIN,
    SlowQueryLog,
    Tracer,
    tracing_default,
)
from repro.persist import (
    SnapshotStore,
    persist_key,
    restore_context,
    snapshot_context,
)
from repro.shard.process_executor import ProcessExecutor
from repro.stats import (
    StatsReport,
    csr_section,
    deltas_section,
    programs_section,
    unified_stats,
)
from repro.why.engine import WhyQueryEngine, WhyQueryReport
from repro.why.session import DebugSession

__all__ = [
    "AdmissionRejected",
    "BudgetLease",
    "BudgetPool",
    "WhyQueryService",
]

# Process-wide request metrics (the unified stats' ``metrics`` section
# and the Prometheus endpoint render these).  Handles are module-level
# so the hot path pays one attribute load, not a registry lookup.
_EXPLAIN_LATENCY = REGISTRY.histogram(
    "repro_explain_latency_seconds",
    help="End-to-end WhyQueryService.explain() latency",
)
_FIRST_CANDIDATE_LATENCY = REGISTRY.histogram(
    "repro_first_candidate_seconds",
    help="Time from request start to the first evaluated rewrite candidate",
)
_ADMISSION_WAIT = REGISTRY.histogram(
    "repro_admission_wait_seconds",
    help="Time spent acquiring a budget-pool admission lease",
)
_EXPLAIN_CALLS = REGISTRY.counter(
    "repro_explain_total", help="WhyQueryService.explain() calls served"
)
_EXPLAIN_REJECTED = REGISTRY.counter(
    "repro_explain_rejected_total",
    help="Requests shed by budget-pool admission control",
)


def _span_kind_histogram(kind: str):
    """The per-span-kind duration histogram (one request's total time
    inside that kind is one observation)."""
    return REGISTRY.histogram(
        "repro_span_seconds",
        help="Per-request total time spent inside one span kind",
        labels={"kind": kind},
    )


class AdmissionRejected(RuntimeError):
    """The budget pool could not admit the request (overload shedding).

    Raised by :meth:`BudgetPool.acquire` -- and propagated out of
    :meth:`WhyQueryService.explain` / :meth:`WhyQueryService.explain_async`
    -- when the pool is exhausted and the queue policy does not allow
    (further) waiting.  A deployment maps this to its transport-level
    overload response (HTTP 429 / gRPC RESOURCE_EXHAUSTED).
    """


class BudgetLease:
    """One request's slice of a :class:`BudgetPool`.

    ``budget`` is the :class:`~repro.exec.evaluator.EvaluationBudget` the
    request's engines spend against; ``granted`` is its size.  The lease
    returns its capacity with :meth:`release` (the service does this in a
    ``finally``); it also works as a context manager.
    """

    __slots__ = ("granted", "budget", "_pool", "_released")

    def __init__(self, pool: "BudgetPool", granted: int) -> None:
        self.granted = granted
        self.budget = EvaluationBudget(granted)
        self._pool = pool
        self._released = False

    def release(self) -> None:
        """Return the granted capacity to the pool (idempotent-checked)."""
        if self._released:
            raise RuntimeError("budget lease released twice")
        self._released = True
        self._pool._release(self)

    def __enter__(self) -> "BudgetLease":
        return self

    def __exit__(self, *exc: object) -> None:
        if not self._released:
            self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BudgetLease(granted={self.granted}, "
            f"spent={self.budget.spent}, released={self._released})"
        )


class BudgetPool:
    """Bounded global pool of evaluation capacity shared by all requests.

    ``total`` is the number of candidate evaluations that may be
    *reserved* concurrently across active requests.  Each admission
    carves out a fair share: a request asking for ``requested``
    evaluations is granted ``min(requested, available,
    max(min_grant, total // (active + 1)))`` -- under light load a
    request gets everything it asked for, under heavy load the pool
    splits evenly across the requests currently holding leases.  A grant
    below ``min(requested, min_grant)`` is not worth admitting (the
    search could barely move); such requests wait or are rejected:

    * ``max_waiting = 0`` (default) -- **reject policy**: raise
      :class:`AdmissionRejected` immediately;
    * ``max_waiting > 0`` -- **queue policy**: up to that many requests
      block for capacity (``wait_timeout`` seconds each, ``None`` =
      indefinitely); waiters past the cap, and waiters whose timeout
      expires, are rejected.

    Thread-safe; all counters are surfaced via :meth:`stats` and folded
    into :meth:`WhyQueryService.stats` under ``"admission"``.
    """

    def __init__(
        self,
        total: int,
        min_grant: int = 8,
        max_waiting: int = 0,
        wait_timeout: Optional[float] = None,
    ) -> None:
        if total < 1:
            raise ValueError("total must be >= 1")
        if min_grant < 1:
            raise ValueError("min_grant must be >= 1")
        if min_grant > total:
            raise ValueError("min_grant cannot exceed total")
        if max_waiting < 0:
            raise ValueError("max_waiting must be >= 0")
        if wait_timeout is not None and wait_timeout < 0:
            raise ValueError("wait_timeout must be >= 0 or None")
        self.total = total
        self.min_grant = min_grant
        self.max_waiting = max_waiting
        self.wait_timeout = wait_timeout
        self._available = total
        self._active = 0
        self._waiting = 0
        self._cond = threading.Condition()
        # lifetime counters
        self._admitted = 0
        self._rejected = 0
        self._timeouts = 0
        self._queued = 0
        self._peak_in_use = 0
        self._peak_active = 0
        self._granted_total = 0
        self._spent_total = 0

    # -- admission ------------------------------------------------------------

    def _try_grant(self, requested: int) -> Optional[int]:
        """Grant size if the request is admissible right now, else None."""
        share = max(self.min_grant, self.total // (self._active + 1))
        grant = min(requested, share, self._available)
        if grant < min(requested, self.min_grant):
            return None
        return grant

    def acquire(self, requested: int) -> BudgetLease:
        """Admit a request and lease it a fair share of the pool.

        Raises :class:`AdmissionRejected` per the queue/reject policy.
        """
        if requested < 1:
            raise ValueError("requested must be >= 1")
        wait_started = time.monotonic()
        deadline = (
            None
            if self.wait_timeout is None
            else wait_started + self.wait_timeout
        )
        with self._cond:
            waited = False
            while True:
                grant = self._try_grant(requested)
                if grant is not None:
                    if waited:
                        self._waiting -= 1
                    self._active += 1
                    self._available -= grant
                    self._admitted += 1
                    self._granted_total += grant
                    in_use = self.total - self._available
                    self._peak_in_use = max(self._peak_in_use, in_use)
                    self._peak_active = max(self._peak_active, self._active)
                    _ADMISSION_WAIT.observe(time.monotonic() - wait_started)
                    return BudgetLease(self, grant)
                if not waited:
                    if self._waiting >= self.max_waiting:
                        self._rejected += 1
                        raise AdmissionRejected(
                            f"budget pool exhausted ({self._active} active, "
                            f"{self._available}/{self.total} available)"
                        )
                    waited = True
                    self._waiting += 1
                    self._queued += 1
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        self._waiting -= 1
                        self._timeouts += 1
                        self._rejected += 1
                        raise AdmissionRejected(
                            "timed out waiting for budget-pool capacity"
                        )

    def _release(self, lease: BudgetLease) -> None:
        with self._cond:
            self._available += lease.granted
            self._active -= 1
            self._spent_total += lease.budget.spent
            self._cond.notify_all()

    # -- reporting ------------------------------------------------------------

    @property
    def available(self) -> int:
        with self._cond:
            return self._available

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    def stats(self) -> Dict[str, int]:
        """Snapshot of capacity and lifetime admission counters."""
        with self._cond:
            return {
                "total": self.total,
                "available": self._available,
                "in_use": self.total - self._available,
                "active_requests": self._active,
                "waiting_requests": self._waiting,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "timeouts": self._timeouts,
                "queued_waits": self._queued,
                "peak_in_use": self._peak_in_use,
                "peak_active": self._peak_active,
                "evaluations_granted": self._granted_total,
                "evaluations_spent": self._spent_total,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BudgetPool(total={self.total}, available={self.available}, "
            f"active={self.active})"
        )


class _PoolEntry:
    """One pooled context plus the bookkeeping the LRU needs.

    With ``executor="process"`` the entry also owns the graph's warm
    worker pool (a :class:`~repro.shard.ProcessExecutor` is bound to one
    graph snapshot, so it shares the context's lifecycle: created with
    the slot, shut down on eviction).  ``in_flight``/``retired`` make
    that shutdown safe under concurrency: a request *leases* the entry
    for its duration, and an evicted (retired) entry's pool is closed by
    whoever drops the lease count to zero -- never under a request that
    is still evaluating on it.
    """

    __slots__ = ("context", "version", "requests", "executor", "in_flight", "retired")

    def __init__(
        self,
        context: ExecutionContext,
        executor: Optional[ProcessExecutor] = None,
    ) -> None:
        self.context = context
        self.version = context.graph.version
        self.requests = 0
        self.executor = executor
        #: requests currently executing against this entry
        self.in_flight = 0
        #: set when the LRU dropped the entry; resources close at drain
        self.retired = False


class WhyQueryService:
    """Serves why-query debugging over a bounded pool of warm contexts.

    ``max_contexts`` bounds the number of graphs whose evaluation state is
    kept warm; the least-recently-used graph's context is dropped when the
    pool overflows (its memory goes with it -- contexts created by the
    service are private to the service, not the process-wide registry).
    Engine tuning knobs (``mcs_strategy``, budgets, ``rewrite_k``, ...)
    are fixed per service and applied to every request.

    ``budget_pool`` switches on admission control: every ``explain()``
    (sync or async) leases its rewriting budget from the pool and
    returns it when done.  ``max_async_requests`` bounds the thread pool
    behind the async front door -- the number of requests concurrently
    *executing*; overlap of the candidate counts inside each request is
    the executor's job.  ``context_factory`` customises how per-graph
    contexts are built (benchmarks use it to model a storage-backed
    evaluation stack; a deployment could use it to restore persisted
    caches).

    ``persist`` (a directory path or a
    :class:`~repro.persist.SnapshotStore`) switches on **warm-restart
    persistence and context tiering** (docs/persistence.md): LRU
    evictions spill a context's cache state to disk instead of
    dropping it, first touch prewarms from the spilled snapshot,
    :meth:`checkpoint`/:meth:`close` write durability points, the
    slow-query log survives restarts, and a restarted service restores
    result/plan caches after validating each snapshot against the live
    graph (delta-replay scoped; see :mod:`repro.persist`).

    ``executor="process"`` switches on **CPU-parallel evaluation**:
    every pooled graph gets its own
    :class:`~repro.shard.ProcessExecutor` -- ``process_workers`` worker
    processes, each holding a long-lived warm context built from a
    snapshot of that graph -- created with the graph's pool slot and
    shut down when the slot is evicted.  ``shards`` > 1 additionally
    partitions each worker's snapshot so single heavy counts can fan
    out per shard (``count_sharded``).  ``placement="affine"`` makes
    the worker pools **shard-affine**: each worker process receives
    only its placed shards' wire payloads instead of the full snapshot,
    so per-worker memory scales down with the shard count; blocks a
    slice cannot finish are resolved coordinator-side (counted as
    ``affine_fallbacks``).  The per-graph worker/shard counters --
    including the payload/memory accounting (``payload_bytes`` actually
    shipped vs ``full_snapshot_bytes``) -- surface under
    ``stats()["pools"]``.
    """

    #: engine kwargs the service itself wires per request; passing them as
    #: engine_options would silently collide at explain() time
    _RESERVED_ENGINE_OPTIONS = frozenset(
        {
            "graph",
            "context",
            "matcher",
            "executor",
            "preference_model",
            "preferences",
            "evaluation_budget",
            "on_candidate",
            "tracer",
        }
    )

    #: evaluations requested from the budget pool per request when the
    #: service's engine options don't override ``max_rewrite_evaluations``
    #: (mirrors the WhyQueryEngine default)
    DEFAULT_REQUEST_EVALUATIONS = 300

    def __init__(
        self,
        max_contexts: int = 8,
        executor: Optional[Union[BatchExecutor, str]] = None,
        budget_pool: Optional[BudgetPool] = None,
        max_async_requests: int = 32,
        context_factory: Optional[
            Callable[[PropertyGraph], ExecutionContext]
        ] = None,
        shards: int = 1,
        process_workers: int = 2,
        placement: str = "full",
        slow_log_capacity: int = 32,
        persist: Optional[Union[str, SnapshotStore]] = None,
        **engine_options,
    ) -> None:
        if max_contexts < 1:
            raise ValueError("max_contexts must be >= 1")
        if max_async_requests < 1:
            raise ValueError("max_async_requests must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if process_workers < 1:
            raise ValueError("process_workers must be >= 1")
        if isinstance(executor, str) and executor != "process":
            raise ValueError(
                f"unknown executor mode {executor!r}; pass 'process' or a "
                "BatchExecutor instance"
            )
        if placement not in ("full", "affine"):
            raise ValueError(
                f"unknown placement mode {placement!r}; pass 'full' or 'affine'"
            )
        if placement == "affine" and executor != "process":
            raise ValueError(
                "placement='affine' requires executor='process' (placement "
                "maps shards onto worker processes)"
            )
        reserved = self._RESERVED_ENGINE_OPTIONS & engine_options.keys()
        if reserved:
            raise TypeError(
                f"engine option(s) {sorted(reserved)} are wired per request "
                "by the service (preference models live on the per-graph "
                "context; pass executor=/budget_pool= directly)"
            )
        self.max_contexts = max_contexts
        #: a ``BatchExecutor`` shared by all requests, or ``None``; in
        #: process mode the shared executor stays ``None`` and each pool
        #: entry owns a per-graph ``ProcessExecutor`` instead
        self.executor = None if isinstance(executor, str) else executor
        self.process_mode = executor == "process"
        self.shards = shards
        self.process_workers = process_workers
        self.placement = placement
        self.budget_pool = budget_pool
        self.max_async_requests = max_async_requests
        self.engine_options = engine_options
        self._context_factory = (
            context_factory if context_factory is not None else ExecutionContext
        )
        #: bounded record of the slowest explains (see docs/observability.md)
        self.slow_log = SlowQueryLog(capacity=slow_log_capacity)
        #: warm-restart persistence (docs/persistence.md): a directory
        #: path or a ready-made SnapshotStore switches on context
        #: tiering (evictions spill, first touch prewarms), explicit
        #: checkpoints and slow-log survival; ``None`` keeps the
        #: historical everything-is-lost-on-restart behaviour
        self.persist_store: Optional[SnapshotStore] = (
            persist
            if persist is None or isinstance(persist, SnapshotStore)
            else SnapshotStore(persist)
        )
        self._persist_counters: Dict[str, int] = {
            "prewarm_attempts": 0,
            "prewarm_restored": 0,
            "prewarm_cold": 0,
            "prewarm_errors": 0,
            "results_restored": 0,
            "plans_restored": 0,
            "spills": 0,
            "spill_errors": 0,
            "checkpoints": 0,
            "slow_log_restored": 0,
        }
        self._last_restore: Optional[Dict[str, object]] = None
        self._pool: "OrderedDict[int, _PoolEntry]" = OrderedDict()
        self._lock = threading.RLock()
        if self.persist_store is not None:
            self._restore_slow_log()
        self._request_pool: Optional[ThreadPoolExecutor] = None
        # throughput counters (monotonic over the service lifetime)
        self._explain_calls = 0
        self._session_calls = 0
        self._async_calls = 0
        self._rejected_calls = 0
        self._contexts_created = 0
        self._evictions = 0
        self._busy_seconds = 0.0
        self._started = time.perf_counter()

    # -- context pool ---------------------------------------------------------

    def _entry_for(self, graph: PropertyGraph, lease: bool = False) -> _PoolEntry:
        """The graph's pool entry (LRU bookkeeping, created on demand).

        With ``lease=True`` the entry's ``in_flight`` count is raised;
        the caller must pair it with :meth:`_release_entry` (requests do
        this in a ``finally``), which is what keeps an evicted entry's
        worker pool alive until its last request finished.
        """
        key = id(graph)
        evicted: List[_PoolEntry] = []
        spilled: List[_PoolEntry] = []
        created: Optional[_PoolEntry] = None
        with self._lock:
            entry = self._pool.get(key)
            if entry is not None and entry.context.graph is graph:
                self._pool.move_to_end(key)
            else:
                context = self._context_factory(graph)
                if context.graph is not graph:
                    raise ValueError(
                        "context_factory returned a context for a different graph"
                    )
                executor = None
                if self.process_mode:
                    # the workers must evaluate with the semantics of the
                    # context the factory built, or process-mode counts
                    # would silently diverge from the serial service's
                    executor = ProcessExecutor(
                        graph,
                        max_workers=self.process_workers,
                        shards=self.shards,
                        injective=context.matcher.injective,
                        typed_adjacency=context.matcher.typed_adjacency,
                        placement=self.placement,
                        compiled=context.matcher.compiled,
                    )
                entry = _PoolEntry(context, executor)
                created = entry
                self._pool[key] = entry
                self._contexts_created += 1
                while len(self._pool) > self.max_contexts:
                    _, dropped = self._pool.popitem(last=False)
                    self._evictions += 1
                    dropped.retired = True
                    spilled.append(dropped)
                    if dropped.in_flight == 0:
                        evicted.append(dropped)
                    # else: the last in-flight request closes it on release
            if lease:
                entry.in_flight += 1
            entry.requests += 1
            entry.version = graph.version
        # persistence and worker-pool teardown happen outside the lock:
        # eviction must not stall every other request behind process
        # teardown or snapshot IO.  Tiering: the evicted context's cache
        # state spills to the snapshot store (instead of being dropped),
        # and a freshly created context prewarms from whatever the store
        # holds for its graph.  Prewarming a *published* entry is
        # racy-benign -- the caches take restores under their own locks
        # and live entries always win over restored ones.
        for dropped in spilled:
            self._spill_entry(dropped)
        for dropped in evicted:
            if dropped.executor is not None:
                dropped.executor.close()
        if created is not None:
            self._prewarm_entry(created)
        return entry

    # -- warm-restart persistence (docs/persistence.md) -----------------------

    #: store key of the service-wide slow-query log payload
    _SLOW_LOG_KEY = "service-slowlog"

    def _spill_entry(self, entry: _PoolEntry) -> None:
        """Snapshot one context's warm state to the persist store.

        Persistence must never break serving: failures (disk full,
        unserialisable attribute values, ...) are swallowed and counted.
        """
        if self.persist_store is None:
            return
        try:
            payload = snapshot_context(entry.context)
            self.persist_store.save(persist_key(entry.context.graph), payload)
            self._persist_counters["spills"] += 1
        except Exception:
            self._persist_counters["spill_errors"] += 1

    def _prewarm_entry(self, entry: _PoolEntry) -> None:
        """Restore a freshly created context from its spilled/persisted
        snapshot, if one survives validation (cold start otherwise)."""
        if self.persist_store is None:
            return
        self._persist_counters["prewarm_attempts"] += 1
        try:
            payload = self.persist_store.load(persist_key(entry.context.graph))
            if payload is None:
                self._persist_counters["prewarm_cold"] += 1
                return
            report = restore_context(entry.context, payload)
        except Exception:
            self._persist_counters["prewarm_errors"] += 1
            return
        self._last_restore = report.as_dict()
        if report.status == "restored":
            self._persist_counters["prewarm_restored"] += 1
            self._persist_counters["results_restored"] += report.results_restored
            self._persist_counters["plans_restored"] += report.plans_restored
        else:
            self._persist_counters["prewarm_cold"] += 1

    def _restore_slow_log(self) -> None:
        payload = self.persist_store.load(self._SLOW_LOG_KEY)
        if (
            isinstance(payload, dict)
            and payload.get("kind") == "slowlog"
            and isinstance(payload.get("entries"), list)
        ):
            restored = self.slow_log.restore(payload["entries"])
            self._persist_counters["slow_log_restored"] += restored

    def checkpoint(self) -> Dict[str, int]:
        """Spill every live pooled context and the slow-query log.

        An explicit durability point: a deployment calls this before a
        planned restart (``close()`` does it automatically) so the next
        process starts warm.  Returns ``{"contexts": n, "errors": m}``;
        a no-op (``persist=None``) returns zeros.
        """
        if self.persist_store is None:
            return {"contexts": 0, "errors": 0}
        with self._lock:
            entries = list(self._pool.values())
        saved = 0
        errors = 0
        for entry in entries:
            before = self._persist_counters["spill_errors"]
            self._spill_entry(entry)
            if self._persist_counters["spill_errors"] == before:
                saved += 1
            else:
                errors += 1
        try:
            self.persist_store.save(
                self._SLOW_LOG_KEY,
                {"kind": "slowlog", "entries": self.slow_log.export()},
            )
        except Exception:
            errors += 1
        self._persist_counters["checkpoints"] += 1
        return {"contexts": saved, "errors": errors}

    def _release_entry(self, entry: _PoolEntry) -> None:
        """Drop a request's lease; close a retired entry at drain."""
        with self._lock:
            entry.in_flight -= 1
            close_now = (
                entry.retired
                and entry.in_flight == 0
                and entry.executor is not None
            )
        if close_now:
            entry.executor.close()

    def context_for(self, graph: PropertyGraph) -> ExecutionContext:
        """The service's warm context of ``graph`` (LRU, created on demand).

        Graphs are identified by object identity; a pooled context pins
        its graph (warm caches for a dead graph are useless), so dropping
        the graph's slot -- LRU eviction -- is also what releases the
        graph's memory.  A version bump on the graph keeps the same
        context: every layer self-invalidates from
        :attr:`PropertyGraph.version`, so eviction is purely a memory
        decision, not a correctness one.  In process mode the slot also
        owns the graph's worker pool, which eviction shuts down.
        """
        return self._entry_for(graph).context

    def _executor_for(self, entry: _PoolEntry) -> Optional[BatchExecutor]:
        """The executor a request over this entry's graph should use."""
        return entry.executor if self.process_mode else self.executor

    def __len__(self) -> int:
        """Number of live pooled contexts."""
        with self._lock:
            return len(self._pool)

    # -- admission ------------------------------------------------------------

    def _admit(self) -> Optional[BudgetLease]:
        """Lease this request's evaluation budget from the pool (if any)."""
        if self.budget_pool is None:
            return None
        requested = int(
            self.engine_options.get(
                "max_rewrite_evaluations", self.DEFAULT_REQUEST_EVALUATIONS
            )
        )
        try:
            return self.budget_pool.acquire(requested)
        except AdmissionRejected:
            _EXPLAIN_REJECTED.inc()
            with self._lock:
                self._rejected_calls += 1
            raise

    # -- request entry points -------------------------------------------------

    def explain(
        self,
        graph: PropertyGraph,
        query: GraphQuery,
        threshold: Optional[CardinalityThreshold] = None,
        explain: bool = True,
        rewrite: bool = True,
        on_candidate: Optional[Callable[..., None]] = None,
        budget: Optional[EvaluationBudget] = None,
        trace: Optional[bool] = None,
    ) -> WhyQueryReport:
        """One-shot debugging request (classify, explain, rewrite).

        With a ``budget_pool`` configured, the request first leases its
        rewriting budget (queueing or raising :class:`AdmissionRejected`
        per the pool's policy) and returns the lease when done -- under
        load a request may be granted a smaller search budget than the
        engine's ``max_rewrite_evaluations``.

        ``budget`` overrides that admission path with an externally
        leased :class:`~repro.exec.evaluator.EvaluationBudget` -- the
        protocol server uses this to map *per-tenant* budget pools onto
        requests (each tenant leases from its own pool before calling in).

        ``on_candidate`` is the incremental-results seam: it is invoked
        once per evaluated rewrite candidate
        (an :class:`~repro.exec.evaluator.EvaluatedCandidate`) while the
        search is still running; exceptions it raises abort the search
        and propagate out (cooperative cancellation).

        ``trace`` switches request tracing on (``None`` follows the
        session default, :func:`repro.obs.tracing_default`, i.e.
        ``REPRO_TRACE=1``).  A traced request carries its span tree on
        ``report.trace``; an untraced request pays only the no-op tracer
        fast path.  Latency/admission histograms and the slow-query log
        record every request either way.
        """
        if trace is None:
            trace = tracing_default()
        tracer = Tracer() if trace else NULL_TRACER
        start = time.perf_counter()
        first_candidate: List[Optional[float]] = [None]
        caller_on_candidate = on_candidate

        def observed_on_candidate(item) -> None:
            if first_candidate[0] is None:
                first_candidate[0] = time.perf_counter() - start
            if caller_on_candidate is not None:
                caller_on_candidate(item)

        with tracer.activate():
            with tracer.span(SPAN_EXPLAIN) as root:
                with tracer.span(SPAN_ADMISSION):
                    lease = self._admit() if budget is None else None
                try:
                    entry = self._entry_for(graph, lease=True)
                    try:
                        context = entry.context
                        cache_stats = context.cache.stats
                        hits_before = cache_stats.hits
                        misses_before = cache_stats.misses
                        steps_before = context.matcher.steps
                        engine = WhyQueryEngine(
                            context=context,
                            executor=self._executor_for(entry),
                            preference_model=context.preference_model,
                            preferences=context.preferences,
                            evaluation_budget=(
                                budget
                                if budget is not None
                                else None if lease is None else lease.budget
                            ),
                            on_candidate=observed_on_candidate,
                            tracer=tracer,
                            **self.engine_options,
                        )
                        busy_start = time.perf_counter()
                        try:
                            report = engine.debug(
                                query, threshold, explain=explain, rewrite=rewrite
                            )
                        finally:
                            with self._lock:
                                self._explain_calls += 1
                                self._busy_seconds += (
                                    time.perf_counter() - busy_start
                                )
                    finally:
                        self._release_entry(entry)
                finally:
                    if lease is not None:
                        lease.release()
                if tracer.enabled:
                    root.attributes["problem"] = report.problem.value
        # the root span is closed here, so elapsed_s is final and the
        # trace the report carries equals the trace the metrics saw
        elapsed = time.perf_counter() - start
        if tracer.enabled:
            report.trace = tracer.to_dict()
        self._record_explain(
            query=query,
            report=report,
            tracer=tracer,
            elapsed=elapsed,
            first_candidate_s=first_candidate[0],
            cache_delta={
                "hits": cache_stats.hits - hits_before,
                "misses": cache_stats.misses - misses_before,
            },
            matcher_steps=context.matcher.steps - steps_before,
        )
        return report

    def _record_explain(
        self,
        query: GraphQuery,
        report: WhyQueryReport,
        tracer,
        elapsed: float,
        first_candidate_s: Optional[float],
        cache_delta: Dict[str, int],
        matcher_steps: int,
    ) -> None:
        """Fold one finished explain into the process metrics and the
        slow-query log.

        The cache/steps deltas are read from shared per-graph counters,
        so under concurrent requests over the same graph they attribute
        overlapping work approximately -- good enough for profiles,
        never used for correctness.
        """
        _EXPLAIN_CALLS.inc()
        _EXPLAIN_LATENCY.observe(elapsed)
        if first_candidate_s is not None:
            _FIRST_CANDIDATE_LATENCY.observe(first_candidate_s)
        profile = tracer.summarize()
        for kind, agg in profile.items():
            _span_kind_histogram(kind).observe(agg["total_s"])
        rewriting = report.rewriting
        self.slow_log.record(
            {
                "signature": repr(query.signature()),
                "problem": report.problem.value,
                "elapsed_s": elapsed,
                "first_candidate_s": first_candidate_s,
                "matcher_steps": matcher_steps,
                "cache": cache_delta,
                "profile": profile,
                "budget_truncated": bool(
                    getattr(rewriting, "budget_exhausted", False)
                ),
                "shard_fallbacks": int(
                    profile.get("fallback", {}).get("count", 0)
                ),
                "evaluated": int(getattr(rewriting, "evaluated", 0)),
                "traced": bool(tracer.enabled),
            }
        )

    def slow_queries(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The slowest explains seen so far, slowest first.

        Entries are JSON-ready dicts (see :mod:`repro.obs.slowlog`);
        ``limit`` truncates the ranking.  Served verbatim by the
        protocol's ``slow_queries`` message and ``python -m repro
        slowlog``.
        """
        return self.slow_log.entries(limit)

    def open_session(
        self,
        graph: PropertyGraph,
        query: GraphQuery,
        threshold: Optional[CardinalityThreshold] = None,
        **session_options,
    ) -> DebugSession:
        """Start an interactive propose-rate-accept session.

        The session shares the graph's pooled context, so it starts warm
        from every previous ``explain()`` over the same graph, and its
        ratings feed the context's preference models, steering later
        requests over that graph.  When per-user isolation is wanted
        instead, pass fresh models explicitly, e.g.
        ``open_session(graph, query, model=RewritePreferenceModel(),
        preferences=UserPreferences())``.

        Sessions are long-lived and interactive, so they are *not*
        admission-controlled: the budget pool governs the bursty
        ``explain()`` traffic, a session's searches run under its own
        ``max_evaluations``.
        """
        context = self.context_for(graph)
        if threshold is not None:
            session_options.setdefault("threshold", threshold)
        session = DebugSession(query=query, context=context, **session_options)
        with self._lock:
            self._session_calls += 1
        return session

    # -- async front door -----------------------------------------------------

    def _ensure_request_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._request_pool is None:
                self._request_pool = ThreadPoolExecutor(
                    max_workers=self.max_async_requests,
                    thread_name_prefix="whyquery-request",
                )
            return self._request_pool

    async def explain_async(
        self,
        graph: PropertyGraph,
        query: GraphQuery,
        threshold: Optional[CardinalityThreshold] = None,
        explain: bool = True,
        rewrite: bool = True,
        on_candidate: Optional[Callable[..., None]] = None,
        budget: Optional[EvaluationBudget] = None,
        trace: Optional[bool] = None,
    ) -> WhyQueryReport:
        """Awaitable :meth:`explain` for asyncio deployments.

        The request executes on the service's bounded request pool
        (``max_async_requests`` slots), so thousands of concurrent
        ``explain_async`` calls degrade to queueing instead of thousands
        of threads; with an :class:`~repro.exec.async_executor.AsyncExecutor`
        wired in, the candidate counts *inside* each slot overlap on the
        executor's event loop without one thread per count.  Admission
        control applies exactly as in :meth:`explain` --
        :class:`AdmissionRejected` propagates through the awaitable.
        """
        loop = asyncio.get_running_loop()
        with self._lock:
            self._async_calls += 1
        call = functools.partial(
            self.explain,
            graph,
            query,
            threshold,
            explain=explain,
            rewrite=rewrite,
            on_candidate=on_candidate,
            budget=budget,
            trace=trace,
        )
        return await loop.run_in_executor(self._ensure_request_pool(), call)

    async def open_session_async(
        self,
        graph: PropertyGraph,
        query: GraphQuery,
        threshold: Optional[CardinalityThreshold] = None,
        **session_options,
    ) -> DebugSession:
        """Awaitable :meth:`open_session` (context warm-up off the loop).

        Opening a session builds/warms the graph's pooled context, which
        can be expensive on first touch -- this variant keeps that work
        off the event loop.
        """
        loop = asyncio.get_running_loop()
        with self._lock:
            self._async_calls += 1
        call = functools.partial(
            self.open_session, graph, query, threshold, **session_options
        )
        return await loop.run_in_executor(self._ensure_request_pool(), call)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the async request pool and any worker pools (idempotent).

        Pooled contexts (and their warm caches) survive ``close()`` --
        only the thread/process pools are torn down; a later request
        respawns what it needs.  With persistence configured the close
        also checkpoints, so an orderly shutdown always leaves a warm
        snapshot behind.
        """
        if self.persist_store is not None:
            self.checkpoint()
        with self._lock:
            pool, self._request_pool = self._request_pool, None
            executors = [
                entry.executor
                for entry in self._pool.values()
                if entry.executor is not None
            ]
        if pool is not None:
            pool.shutdown(wait=True)
        for executor in executors:
            executor.close()

    def __enter__(self) -> "WhyQueryService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- reporting ------------------------------------------------------------

    def stats(self) -> StatsReport:
        """Aggregated counters over all live contexts, unified schema.

        Emits the :mod:`repro.stats` sections -- ``caches``/``csr``/
        ``programs``/``deltas`` summed over every pooled context,
        ``pools`` summed over the per-graph worker pools (process mode),
        ``admission`` straight from the :class:`BudgetPool`,
        ``metrics`` a snapshot of the process-wide
        :data:`repro.obs.REGISTRY` (latency histograms and request
        counters) -- plus the
        service-specific ``service`` (throughput), ``matcher``,
        ``executor`` and ``per_graph`` keys.  This is exactly what the
        protocol ``stats`` message serves.  The pre-unification keys
        (``stats()["totals"]``, ``stats()["process_pools"]``,
        ``stats()["explain_calls"]``, ...) stay readable for one release
        behind a :class:`DeprecationWarning`.
        """
        admission = self.budget_pool.stats() if self.budget_pool else None
        executor_info = None
        info = getattr(self.executor, "info", None)
        if callable(info):
            executor_info = info()
        persistence: Optional[Dict[str, object]] = None
        if self.persist_store is not None:
            persistence = dict(self._persist_counters)
            persistence["store"] = dict(self.persist_store.counters)
            persistence["directory"] = self.persist_store.directory
            persistence["last_restore"] = self._last_restore
        with self._lock:
            per_graph: List[Dict[str, object]] = []
            caches = {
                "results": {"hits": 0, "misses": 0},
                "vertex_candidates": {"hits": 0, "misses": 0},
            }
            matcher = {"calls": 0, "steps": 0}
            csr = csr_section({})
            programs = programs_section({})
            deltas = deltas_section()
            pools: Optional[Dict[str, object]] = None
            if self.process_mode:
                pools = {
                    "pools_live": 0,
                    "workers": 0,
                    "shards_per_pool": self.shards,
                    "placement": self.placement,
                    "batches": 0,
                    "queries_shipped": 0,
                    "sharded_counts": 0,
                    "pool_rebuilds": 0,
                    # memory/payload accounting: what actually crossed the
                    # process boundary per pooled graph (affine payloads
                    # are per-worker slices, full mode ships the whole
                    # snapshot to every worker)
                    "payload_bytes": 0,
                    "full_snapshot_bytes": 0,
                    "affine_fallbacks": 0,
                }
            for entry in self._pool.values():
                report = entry.context.cache_report()
                for layer in ("results", "vertex_candidates"):
                    layer_stats = report["caches"][layer]
                    caches[layer]["hits"] += int(layer_stats["hits"])
                    caches[layer]["misses"] += int(layer_stats["misses"])
                matcher["calls"] += int(report["matcher"]["calls"])
                matcher["steps"] += int(report["matcher"]["steps"])
                for key in csr:
                    csr[key] += int(report["csr"][key])
                for key in programs:
                    programs[key] += int(report["programs"][key])
                for key in deltas:
                    deltas[key] += int(report["deltas"][key])
                graph_stats: Dict[str, object] = {
                    "graph": repr(entry.context.graph),
                    "version": entry.version,
                    "requests": entry.requests,
                    "cache_report": report,
                }
                if entry.executor is not None and pools is not None:
                    pool_info = entry.executor.info()
                    graph_stats["process_pool"] = pool_info
                    entry_pools = pool_info["pools"]
                    pools["pools_live"] += int(bool(entry_pools["pool_live"]))
                    pools["workers"] += int(entry_pools["max_workers"])
                    pools["batches"] += int(entry_pools["batches"])
                    pools["queries_shipped"] += int(entry_pools["queries_shipped"])
                    pools["sharded_counts"] += int(entry_pools["sharded_counts"])
                    pools["pool_rebuilds"] += int(entry_pools["pool_rebuilds"])
                    pools["full_snapshot_bytes"] += int(
                        entry_pools.get("full_snapshot_bytes", 0) or 0
                    )
                    for key in deltas:
                        deltas[key] += int(pool_info["deltas"][key])
                    if self.placement == "affine":
                        pools["payload_bytes"] += sum(
                            entry_pools.get("payload_bytes_per_worker", ())
                        )
                        pools["affine_fallbacks"] += int(
                            entry_pools.get("affine_fallbacks", 0)
                        )
                    else:
                        # the full snapshot is shipped to every worker
                        pools["payload_bytes"] += int(
                            entry_pools.get("full_snapshot_bytes", 0) or 0
                        ) * int(entry_pools["max_workers"])
                per_graph.append(graph_stats)
            requests = self._explain_calls + self._session_calls
            uptime = time.perf_counter() - self._started
            service = {
                "requests": requests,
                "explain_calls": self._explain_calls,
                "session_calls": self._session_calls,
                "async_calls": self._async_calls,
                "rejected_calls": self._rejected_calls,
                "contexts_live": len(self._pool),
                "contexts_created": self._contexts_created,
                "evictions": self._evictions,
                "busy_seconds": self._busy_seconds,
                "uptime_seconds": uptime,
                "requests_per_second": requests / uptime if uptime > 0 else 0.0,
            }
            totals = {
                "result_hits": caches["results"]["hits"],
                "result_misses": caches["results"]["misses"],
                "candidate_hits": caches["vertex_candidates"]["hits"],
                "candidate_misses": caches["vertex_candidates"]["misses"],
                "matcher_calls": matcher["calls"],
                "matcher_steps": matcher["steps"],
                "programs_compiled": programs["compiled"],
                "program_hits": programs["hits"],
                "csr_builds": csr["builds"],
                "csr_bytes": csr["bytes"],
                "csr_patches": csr["patches"],
                "csr_rebuilds": csr["rebuilds"],
                "csr_evictions": csr["evictions"],
                "deltas_applied": deltas["applied"],
            }
            legacy: Dict[str, object] = dict(service)
            legacy["totals"] = totals
            legacy["process_pools"] = pools
            hints = {key: f"['service'][{key!r}]" for key in service}
            hints["totals"] = "['caches']/['csr']/['programs']/['deltas']"
            hints["process_pools"] = "['pools']"
            return unified_stats(
                caches=caches,
                csr=csr,
                programs=programs,
                pools=pools,
                admission=admission,
                deltas=deltas,
                metrics=REGISTRY.snapshot(),
                extra={
                    "service": service,
                    "matcher": matcher,
                    "executor": executor_info,
                    "per_graph": per_graph,
                    "persistence": persistence,
                },
                legacy=legacy,
                hints=hints,
                surface="WhyQueryService.stats()",
            )
