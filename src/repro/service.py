"""Long-lived why-query service: shared contexts across requests.

The ROADMAP's north star is a process that debugs queries for *many*
users over a handful of hot graphs.  One-shot engine construction per
request throws the shared evaluation state away between requests; the
:class:`WhyQueryService` keeps it:

* a bounded pool of per-graph :class:`~repro.exec.context.ExecutionContext`
  instances (least-recently-used graph evicted first), so every
  ``explain()``/``open_session()`` call over the same graph reuses the
  matcher, the query-result cache, the statistics and the candidate-set
  cache warmed by earlier requests;
* thread-safe request handling -- the pool is lock-protected, and the
  evaluation stack underneath keeps all per-call state on the stack, so
  concurrent ``explain()`` calls over the same graph are safe (CPython
  dict/counter mutation is atomic under the GIL);
* optional batched candidate evaluation: give the service a
  :class:`~repro.exec.evaluator.ParallelExecutor` and every rewriting
  search it runs drains its candidates in worker-sized batches;
* aggregated cache/throughput counters over all live contexts
  (:meth:`WhyQueryService.stats`), the service-level equivalent of
  :meth:`ExecutionContext.cache_report`.

>>> service = WhyQueryService(max_contexts=4)
>>> report = service.explain(graph, failed_query)       # request 1
>>> session = service.open_session(graph, failed_query) # request 2, warm
>>> service.stats()["explain_calls"]
1
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.exec.context import ExecutionContext
from repro.exec.evaluator import BatchExecutor
from repro.metrics.cardinality import CardinalityThreshold
from repro.why.engine import WhyQueryEngine, WhyQueryReport
from repro.why.session import DebugSession

__all__ = ["WhyQueryService"]


class _PoolEntry:
    """One pooled context plus the bookkeeping the LRU needs."""

    __slots__ = ("context", "version", "requests")

    def __init__(self, context: ExecutionContext) -> None:
        self.context = context
        self.version = context.graph.version
        self.requests = 0


class WhyQueryService:
    """Serves why-query debugging over a bounded pool of warm contexts.

    ``max_contexts`` bounds the number of graphs whose evaluation state is
    kept warm; the least-recently-used graph's context is dropped when the
    pool overflows (its memory goes with it -- contexts created by the
    service are private to the service, not the process-wide registry).
    Engine tuning knobs (``mcs_strategy``, budgets, ``rewrite_k``, ...)
    are fixed per service and applied to every request.
    """

    #: engine kwargs the service itself wires per request; passing them as
    #: engine_options would silently collide at explain() time
    _RESERVED_ENGINE_OPTIONS = frozenset(
        {"graph", "context", "matcher", "executor", "preference_model", "preferences"}
    )

    def __init__(
        self,
        max_contexts: int = 8,
        executor: Optional[BatchExecutor] = None,
        **engine_options,
    ) -> None:
        if max_contexts < 1:
            raise ValueError("max_contexts must be >= 1")
        reserved = self._RESERVED_ENGINE_OPTIONS & engine_options.keys()
        if reserved:
            raise TypeError(
                f"engine option(s) {sorted(reserved)} are wired per request "
                "by the service (preference models live on the per-graph "
                "context; pass executor= directly)"
            )
        self.max_contexts = max_contexts
        self.executor = executor
        self.engine_options = engine_options
        self._pool: "OrderedDict[int, _PoolEntry]" = OrderedDict()
        self._lock = threading.RLock()
        # throughput counters (monotonic over the service lifetime)
        self._explain_calls = 0
        self._session_calls = 0
        self._contexts_created = 0
        self._evictions = 0
        self._busy_seconds = 0.0
        self._started = time.perf_counter()

    # -- context pool ---------------------------------------------------------

    def context_for(self, graph: PropertyGraph) -> ExecutionContext:
        """The service's warm context of ``graph`` (LRU, created on demand).

        Graphs are identified by object identity; a pooled context pins
        its graph (warm caches for a dead graph are useless), so dropping
        the graph's slot -- LRU eviction -- is also what releases the
        graph's memory.  A version bump on the graph keeps the same
        context: every layer self-invalidates from
        :attr:`PropertyGraph.version`, so eviction is purely a memory
        decision, not a correctness one.
        """
        key = id(graph)
        with self._lock:
            entry = self._pool.get(key)
            if entry is not None and entry.context.graph is graph:
                self._pool.move_to_end(key)
            else:
                entry = _PoolEntry(ExecutionContext(graph))
                self._pool[key] = entry
                self._contexts_created += 1
                while len(self._pool) > self.max_contexts:
                    self._pool.popitem(last=False)
                    self._evictions += 1
            entry.requests += 1
            entry.version = graph.version
            return entry.context

    def __len__(self) -> int:
        """Number of live pooled contexts."""
        with self._lock:
            return len(self._pool)

    # -- request entry points -------------------------------------------------

    def explain(
        self,
        graph: PropertyGraph,
        query: GraphQuery,
        threshold: Optional[CardinalityThreshold] = None,
        explain: bool = True,
        rewrite: bool = True,
    ) -> WhyQueryReport:
        """One-shot debugging request (classify, explain, rewrite)."""
        context = self.context_for(graph)
        engine = WhyQueryEngine(
            context=context,
            executor=self.executor,
            preference_model=context.preference_model,
            preferences=context.preferences,
            **self.engine_options,
        )
        start = time.perf_counter()
        try:
            return engine.debug(query, threshold, explain=explain, rewrite=rewrite)
        finally:
            with self._lock:
                self._explain_calls += 1
                self._busy_seconds += time.perf_counter() - start

    def open_session(
        self,
        graph: PropertyGraph,
        query: GraphQuery,
        threshold: Optional[CardinalityThreshold] = None,
        **session_options,
    ) -> DebugSession:
        """Start an interactive propose-rate-accept session.

        The session shares the graph's pooled context, so it starts warm
        from every previous ``explain()`` over the same graph, and its
        ratings feed the context's preference models, steering later
        requests over that graph.  When per-user isolation is wanted
        instead, pass fresh models explicitly, e.g.
        ``open_session(graph, query, model=RewritePreferenceModel(),
        preferences=UserPreferences())``.
        """
        context = self.context_for(graph)
        if threshold is not None:
            session_options.setdefault("threshold", threshold)
        session = DebugSession(query=query, context=context, **session_options)
        with self._lock:
            self._session_calls += 1
        return session

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Aggregated cache and throughput counters over the live pool."""
        with self._lock:
            per_graph: List[Dict[str, object]] = []
            totals = {
                "result_hits": 0,
                "result_misses": 0,
                "candidate_hits": 0,
                "candidate_misses": 0,
                "matcher_calls": 0,
                "matcher_steps": 0,
            }
            for entry in self._pool.values():
                report = entry.context.cache_report()
                totals["result_hits"] += int(report["results"]["hits"])
                totals["result_misses"] += int(report["results"]["misses"])
                totals["candidate_hits"] += int(report["vertex_candidates"]["hits"])
                totals["candidate_misses"] += int(
                    report["vertex_candidates"]["misses"]
                )
                totals["matcher_calls"] += int(report["matcher"]["calls"])
                totals["matcher_steps"] += int(report["matcher"]["steps"])
                per_graph.append(
                    {
                        "graph": repr(entry.context.graph),
                        "version": entry.version,
                        "requests": entry.requests,
                        "cache_report": report,
                    }
                )
            requests = self._explain_calls + self._session_calls
            uptime = time.perf_counter() - self._started
            return {
                "requests": requests,
                "explain_calls": self._explain_calls,
                "session_calls": self._session_calls,
                "contexts_live": len(self._pool),
                "contexts_created": self._contexts_created,
                "evictions": self._evictions,
                "busy_seconds": self._busy_seconds,
                "uptime_seconds": uptime,
                "requests_per_second": requests / uptime if uptime > 0 else 0.0,
                "totals": totals,
                "per_graph": per_graph,
            }
