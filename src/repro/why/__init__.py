"""Holistic why-query dispatching (Sec. 3.1.3) and interactive sessions."""

from repro.why.engine import WhyQueryEngine, WhyQueryReport
from repro.why.session import DebugSession, SessionEvent

__all__ = ["DebugSession", "SessionEvent", "WhyQueryEngine", "WhyQueryReport"]
