"""Interactive debugging sessions (the DebEAQ workflow).

The thesis' demonstrator (DebEAQ, ICDE 2016) wraps the why-query engines
into an interactive loop: the system proposes an explanation, the user
rates it, the preference models adapt, and the next proposal reflects the
feedback.  :class:`DebugSession` provides that loop as a library API:

>>> session = DebugSession(graph, failed_query)
>>> proposal = session.propose()          # best current rewriting
>>> session.rate(0.0)                     # "don't touch that element"
>>> proposal = session.propose()          # adapted proposal
>>> session.accept()                      # freeze the accepted rewriting

The session keeps a full transcript (proposals, ratings, timings) that a
frontend can render and tests can assert on, and exposes the subgraph
explanation of the failed query for the "why did it fail?" panel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import ExplanationError
from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.exec.context import ExecutionContext
from repro.explain.discover_mcs import McsResult, discover_mcs
from repro.explain.preferences import UserPreferences
from repro.metrics.cardinality import CardinalityProblem, CardinalityThreshold
from repro.rewrite.coarse import CoarseRewriter, RewrittenQuery
from repro.rewrite.preference_model import RewritePreferenceModel
from repro.finegrained.traverse_search_tree import TraverseSearchTree


@dataclass
class SessionEvent:
    """One transcript entry: a proposal and the user's reaction."""

    round: int
    proposal: RewrittenQuery
    rating: Optional[float] = None
    accepted: bool = False
    elapsed: float = 0.0


@dataclass
class DebugSession:
    """Stateful propose-rate-accept loop over one failed query.

    The session evaluates through the graph's shared
    :class:`~repro.exec.context.ExecutionContext` (pass ``context`` to
    supply one explicitly, e.g. the per-graph context of a
    :class:`~repro.service.WhyQueryService`), so the counting work of a
    preceding ``explain()`` call -- and of other sessions over the same
    graph -- is reused instead of re-derived.  Unless given explicitly,
    the preference models also come from the context, so ratings keep
    steering later sessions over the same graph.
    """

    graph: Optional[PropertyGraph] = None
    query: Optional[GraphQuery] = None
    threshold: CardinalityThreshold = field(
        default_factory=lambda: CardinalityThreshold.at_least(1)
    )
    max_evaluations: int = 300
    model: Optional[RewritePreferenceModel] = None
    preferences: Optional[UserPreferences] = None
    transcript: List[SessionEvent] = field(default_factory=list)
    accepted: Optional[RewrittenQuery] = None
    context: Optional[ExecutionContext] = None

    def __post_init__(self) -> None:
        if self.query is None:
            raise ValueError("a query is required")
        if self.context is None:
            if self.graph is None:
                raise ValueError("either graph or context is required")
            self.context = ExecutionContext.for_graph(self.graph)
        elif self.graph is not None and self.graph is not self.context.graph:
            raise ValueError("graph and context.graph differ")
        self.graph = self.context.graph
        if self.model is None:
            self.model = self.context.preference_model
        if self.preferences is None:
            self.preferences = self.context.preferences
        self._explanation: Optional[McsResult] = None

    @property
    def _matcher(self):
        return self.context.matcher

    @property
    def _cache(self):
        return self.context.cache

    # -- "why did it fail?" panel ------------------------------------------------

    @property
    def problem(self) -> CardinalityProblem:
        """Classification of the session's query."""
        observed = self._cache.count(self.query, limit=self.threshold.probe_limit)
        return self.threshold.classify(observed)

    def explanation(self) -> McsResult:
        """The subgraph-based explanation (computed once, then cached)."""
        if self._explanation is None:
            self._explanation = discover_mcs(
                self.graph,
                self.query,
                preferences=self.preferences,
                matcher=self._matcher,
            )
        return self._explanation

    # -- propose / rate / accept ------------------------------------------------------

    @property
    def pending(self) -> Optional[SessionEvent]:
        """The proposal awaiting a rating, if any."""
        if self.transcript and self.transcript[-1].rating is None and not (
            self.transcript[-1].accepted
        ):
            return self.transcript[-1]
        return None

    def propose(self) -> Optional[RewrittenQuery]:
        """Produce the next proposal under the current preference model.

        Returns ``None`` when the search finds no rewriting within the
        budget.  Raises :class:`ExplanationError` when a proposal is
        already awaiting its rating.
        """
        if self.accepted is not None:
            raise ExplanationError("session already accepted a rewriting")
        if self.pending is not None:
            raise ExplanationError("rate the pending proposal first")
        start = time.perf_counter()
        proposal = self._next_proposal()
        if proposal is None:
            return None
        self.transcript.append(
            SessionEvent(
                round=len(self.transcript) + 1,
                proposal=proposal,
                elapsed=time.perf_counter() - start,
            )
        )
        return proposal

    def _next_proposal(self) -> Optional[RewrittenQuery]:
        problem = self.problem
        if problem == CardinalityProblem.EXPECTED:
            raise ExplanationError("query meets its expectation; nothing to propose")
        if problem == CardinalityProblem.EMPTY:
            rewriter = CoarseRewriter(
                context=self.context,
                preference_model=self.model,
                max_evaluations=self.max_evaluations,
            )
            # skip rewritings the user has already rated
            seen = {e.proposal.query.signature() for e in self.transcript}
            result = rewriter.rewrite(self.query, k=len(seen) + 1)
            for candidate in result.explanations:
                if candidate.query.signature() not in seen:
                    return candidate
            return None
        engine = TraverseSearchTree(
            context=self.context,
            threshold=self.threshold,
            max_evaluations=self.max_evaluations,
        )
        outcome = engine.search(self.query)
        seen = {e.proposal.query.signature() for e in self.transcript}
        if outcome.best_query.signature() in seen:
            return None
        from repro.metrics.syntactic import syntactic_distance

        return RewrittenQuery(
            query=outcome.best_query,
            cardinality=outcome.best_cardinality,
            syntactic=syntactic_distance(self.query, outcome.best_query),
            modifications=outcome.modifications,
            estimate=float(outcome.best_cardinality),
        )

    def rate(self, rating: float) -> None:
        """Rate the pending proposal; 0 = unacceptable, 1 = perfect.

        Feeds both user-integration models: the rewrite preference model
        (Sec. 5.4) and the traversal preferences (Sec. 4.4).
        """
        event = self.pending
        if event is None:
            raise ExplanationError("no pending proposal to rate")
        event.rating = rating
        self.model.rate_proposal(event.proposal.modifications, rating)
        for op in event.proposal.modifications:
            # a low rating on a change means the touched element matters
            self.preferences.rate(op.target, 1.0 - rating)

    def accept(self) -> RewrittenQuery:
        """Accept the pending (or last rated) proposal and end the session."""
        if self.accepted is not None:
            return self.accepted
        if not self.transcript:
            raise ExplanationError("nothing proposed yet")
        event = self.transcript[-1]
        event.accepted = True
        if event.rating is None:
            event.rating = 1.0
            self.model.rate_proposal(event.proposal.modifications, 1.0)
        self.accepted = event.proposal
        return event.proposal

    # -- reporting ----------------------------------------------------------------------

    def summary(self) -> str:
        """Readable transcript of the whole session."""
        lines = [f"session: {self.problem.value}, threshold {self.threshold}"]
        for event in self.transcript:
            rating = "pending" if event.rating is None else f"{event.rating:.1f}"
            mark = " [accepted]" if event.accepted else ""
            lines.append(
                f"  round {event.round}: {event.proposal.describe()} "
                f"(rating {rating}){mark}"
            )
        if self.accepted is None:
            lines.append("  no rewriting accepted yet")
        return "\n".join(lines)
