"""Holistic why-query engine (Sec. 3.1.3, Fig. 3.1).

The user hands over a pattern query and (optionally) a cardinality
threshold interval; the engine executes the query, classifies the outcome
as *why-empty*, *why-so-few*, *why-so-many* or *expected*, and dispatches
to the matching debuggers:

===========  ==========================  ================================
problem      subgraph explanation        modification-based explanation
===========  ==========================  ================================
why-empty    DISCOVERMCS (Ch. 4)         coarse-grained rewriting (Ch. 5)
why-so-few   BOUNDEDMCS (Ch. 4)          TRAVERSESEARCHTREE (Ch. 6)
why-so-many  BOUNDEDMCS (Ch. 4)          TRAVERSESEARCHTREE (Ch. 6)
===========  ==========================  ================================

All engines evaluate through one shared
:class:`~repro.exec.context.ExecutionContext` (matcher + query-result
cache + statistics + candidate caches), so the work one debugger performs
(e.g. the bounded counts of BOUNDEDMCS) is reused by the next (the
rewriting search), and the cardinality can oscillate around the threshold
without re-paying for previously evaluated variants.  By default the
engine binds to the graph's process-wide shared context
(:meth:`ExecutionContext.for_graph`), so independently constructed
engines over the same graph reuse each other's evaluation work too;
:meth:`WhyQueryEngine.cache_report` exposes every layer's counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.exec.context import ExecutionContext
from repro.exec.evaluator import BatchExecutor, EvaluationBudget
from repro.explain.bounded_mcs import bounded_mcs
from repro.explain.discover_mcs import McsResult, discover_mcs
from repro.explain.preferences import UserPreferences
from repro.finegrained.traverse_search_tree import (
    FineRewriteResult,
    TraverseSearchTree,
)
from repro.matching.matcher import PatternMatcher
from repro.metrics.cardinality import CardinalityProblem, CardinalityThreshold
from repro.obs.tracing import (
    SPAN_CLASSIFY,
    SPAN_SUBGRAPH,
    current_tracer,
)
from repro.rewrite.coarse import CoarseRewriteResult, CoarseRewriter
from repro.rewrite.preference_model import RewritePreferenceModel

RewritingOutcome = Union[CoarseRewriteResult, FineRewriteResult, None]


@dataclass
class WhyQueryReport:
    """Everything the engine found out about one unexpected result."""

    query: GraphQuery
    problem: CardinalityProblem
    observed_cardinality: int
    threshold: CardinalityThreshold
    subgraph_explanation: Optional[McsResult]
    rewriting: RewritingOutcome
    elapsed: float
    #: span tree of the request (``None`` when tracing was off); a
    #: JSON-ready dict, the same shape the protocol's ``trace`` frame
    #: carries.  Volatile by nature -- ``strip_volatile`` removes it
    #: alongside ``elapsed_s`` for report-identity comparisons.
    trace: Optional[dict] = None

    def summary(self) -> str:
        """Human-readable report (what the DebEAQ-style frontend shows)."""
        lines = [
            f"problem: {self.problem.value} "
            f"(observed cardinality {self.observed_cardinality}, "
            f"expected {self.threshold})"
        ]
        if self.problem == CardinalityProblem.EXPECTED:
            lines.append("the result size meets the expectation; nothing to debug")
            return "\n".join(lines)
        if self.subgraph_explanation is not None:
            lines.append("-- subgraph-based explanation (why did it fail?) --")
            lines.append(self.subgraph_explanation.differential.describe())
        if isinstance(self.rewriting, CoarseRewriteResult):
            lines.append("-- modification-based explanations (how to fix it?) --")
            if self.rewriting.explanations:
                for rewriting in self.rewriting.explanations:
                    lines.append(rewriting.describe())
            else:
                lines.append("no non-empty rewriting found within the budget")
        elif isinstance(self.rewriting, FineRewriteResult):
            lines.append("-- modification-based explanation (how to fix it?) --")
            lines.append(self.rewriting.describe())
            if not self.rewriting.converged:
                lines.append("(threshold not fully reached within the budget)")
        return "\n".join(lines)


class WhyQueryEngine:
    """One-stop debugging interface over a property graph."""

    def __init__(
        self,
        graph: Optional[PropertyGraph] = None,
        matcher: Optional[PatternMatcher] = None,
        preferences: Optional[UserPreferences] = None,
        preference_model: Optional[RewritePreferenceModel] = None,
        mcs_strategy: str = "frontier",
        max_explanation_evaluations: Optional[int] = 200,
        max_rewrite_evaluations: int = 300,
        rewrite_k: int = 3,
        include_topology: bool = False,
        context: Optional[ExecutionContext] = None,
        executor: Optional[BatchExecutor] = None,
        evaluation_budget: Optional[EvaluationBudget] = None,
        on_candidate: Optional[Callable[..., None]] = None,
        tracer=None,
    ) -> None:
        if graph is None and context is None:
            raise ValueError("either graph or context is required")
        if context is None:
            # one shared spine per graph: engines constructed independently
            # over the same graph reuse each other's evaluation work unless
            # the caller wires an explicit matcher (isolation escape hatch)
            if matcher is not None:
                context = ExecutionContext(graph, matcher=matcher)
            else:
                context = ExecutionContext.for_graph(graph)
        else:
            if graph is not None and graph is not context.graph:
                raise ValueError("graph and context.graph differ")
            if matcher is not None and matcher is not context.matcher:
                raise ValueError(
                    "matcher and context are mutually exclusive; wrap the "
                    "matcher in its own ExecutionContext instead"
                )
        self.context = context
        self.graph = context.graph
        self.matcher = context.matcher
        self.cache = context.cache
        self.preferences = preferences
        self.preference_model = preference_model
        self.mcs_strategy = mcs_strategy
        self.max_explanation_evaluations = max_explanation_evaluations
        self.max_rewrite_evaluations = max_rewrite_evaluations
        self.rewrite_k = rewrite_k
        self.include_topology = include_topology
        self.executor = executor
        #: shared allowance for the rewriting search (e.g. a per-request
        #: lease from a service-level BudgetPool); when set it bounds the
        #: rewriting evaluations instead of ``max_rewrite_evaluations``
        self.evaluation_budget = evaluation_budget
        #: incremental-results seam: forwarded to the rewriting engines,
        #: which invoke it once per evaluated candidate as batches finish
        #: (how the protocol server streams partial results); exceptions
        #: raised here abort the search (cooperative cancellation)
        self.on_candidate = on_candidate
        #: request tracer; ``None`` resolves the ambient one per debug()
        self.tracer = tracer

    @property
    def domain(self):
        """The context's (version-refreshed) attribute domain."""
        return self.context.attribute_domain()

    def cache_report(self) -> dict:
        """Hit/miss counters of every cache layer this engine touches.

        Folded into the shared :class:`ExecutionContext`; engines bound to
        the same graph report (and contribute to) the same counters.
        """
        return self.context.cache_report()

    def classify(
        self, query: GraphQuery, threshold: Optional[CardinalityThreshold] = None
    ) -> CardinalityProblem:
        """Classify the query's result size without debugging it."""
        thr = threshold or CardinalityThreshold.at_least(1)
        observed = self.cache.count(query, limit=thr.probe_limit)
        return thr.classify(observed)

    def debug(
        self,
        query: GraphQuery,
        threshold: Optional[CardinalityThreshold] = None,
        explain: bool = True,
        rewrite: bool = True,
    ) -> WhyQueryReport:
        """Full debugging pass: classify, explain, rewrite.

        Without an explicit threshold only the empty-answer problem is
        detectable (``at_least(1)``), mirroring the thesis: too-few /
        too-many need a user-provided cardinality expectation.
        """
        start = time.perf_counter()
        tracer = self.tracer if self.tracer is not None else current_tracer()
        thr = threshold or CardinalityThreshold.at_least(1)
        probe = thr.probe_limit
        with tracer.span(SPAN_CLASSIFY) as span:
            observed = self.cache.count(
                query, limit=None if probe is None else max(probe * 4, probe + 16)
            )
            problem = thr.classify(observed)
            if tracer.enabled:
                span.attributes["problem"] = problem.value
                span.attributes["observed"] = observed

        subgraph: Optional[McsResult] = None
        rewriting: RewritingOutcome = None

        if problem == CardinalityProblem.EMPTY:
            if explain:
                with tracer.span(SPAN_SUBGRAPH, algorithm="discover_mcs"):
                    subgraph = discover_mcs(
                        self.graph,
                        query,
                        strategy=self.mcs_strategy,
                        preferences=self.preferences,
                        max_evaluations=self.max_explanation_evaluations,
                        matcher=self.matcher,
                    )
            if rewrite:
                rewriter = CoarseRewriter(
                    context=self.context,
                    preference_model=self.preference_model,
                    max_evaluations=self.max_rewrite_evaluations,
                    executor=self.executor,
                    budget=self.evaluation_budget,
                    on_candidate=self.on_candidate,
                    tracer=tracer,
                )
                rewriting = rewriter.rewrite(query, k=self.rewrite_k)
        elif problem in (CardinalityProblem.TOO_FEW, CardinalityProblem.TOO_MANY):
            if explain:
                with tracer.span(SPAN_SUBGRAPH, algorithm="bounded_mcs"):
                    subgraph = bounded_mcs(
                        self.graph,
                        query,
                        thr,
                        problem=problem,
                        strategy=self.mcs_strategy,
                        preferences=self.preferences,
                        max_evaluations=self.max_explanation_evaluations,
                        matcher=self.matcher,
                    )
            if rewrite:
                engine = TraverseSearchTree(
                    context=self.context,
                    threshold=thr,
                    include_topology=self.include_topology,
                    constrainable_attrs=self.domain.common_vertex_attrs(),
                    max_evaluations=self.max_rewrite_evaluations,
                    executor=self.executor,
                    budget=self.evaluation_budget,
                    on_candidate=self.on_candidate,
                    tracer=tracer,
                )
                rewriting = engine.search(query)

        return WhyQueryReport(
            query=query,
            problem=problem,
            observed_cardinality=observed,
            threshold=thr,
            subgraph_explanation=subgraph,
            rewriting=rewriting,
            elapsed=time.perf_counter() - start,
        )
