"""Warm-restart persistence: durable snapshots of evaluation state.

See :mod:`repro.persist.snapshot` for the format, the validation rules
and the crash-recovery contract.  The service layer
(:class:`~repro.service.WhyQueryService`) is the main consumer: it
spills evicted pool contexts here (tiering), checkpoints live ones, and
prewarms fresh contexts from whatever survives validation.
"""

from repro.persist.snapshot import (
    MAGIC,
    SNAPSHOT_FORMAT,
    RestoreReport,
    SnapshotStore,
    graph_fingerprint,
    persist_key,
    restore_context,
    set_persist_name,
    snapshot_context,
)

__all__ = [
    "MAGIC",
    "SNAPSHOT_FORMAT",
    "RestoreReport",
    "SnapshotStore",
    "graph_fingerprint",
    "persist_key",
    "restore_context",
    "set_persist_name",
    "snapshot_context",
]
