"""Crash-safe snapshot/restore of warm evaluation state.

A :class:`~repro.service.WhyQueryService` restart (or an LRU eviction
from its context pool) historically discarded every derived artefact --
the plan cache, the :class:`~repro.rewrite.cache.QueryResultCache`, the
compiled-program warmth that hangs off restored plans, and the
slow-query log -- so the first minutes after a deploy served why-queries
at interpreter-cold latency.  This module gives every cache owner an
explicit, versioned externalization seam:

* :func:`snapshot_context` serialises a context's result-cache entries
  (count + limit, keyed by the query itself -- signatures are not
  invertible) and plan-cache entries into one JSON-safe payload stamped
  with the graph mutation ``version`` and a content fingerprint;
* :class:`SnapshotStore` writes payloads to disk in a checksummed,
  atomically-replaced format (``REPROSNAP`` magic + sha256 over the
  body), and its :meth:`~SnapshotStore.load` returns ``None`` on *any*
  decay -- truncation, corruption, checksum mismatch, an unknown or
  newer format -- so a broken file can only ever cost warmth;
* :func:`restore_context` validates a payload against the live graph
  before any entry lands, replaying
  :meth:`~repro.core.graph.PropertyGraph.deltas_since` through the
  PR 7 delta-touch machinery (:mod:`repro.core.delta`) so a snapshot
  survives *small* mutations: only delta-touched entries are dropped,
  a ring overrun or a version mismatch falls back cold.

Validation rules (persisted version ``P`` vs live graph version ``G``):

========  ==============================================================
``P > G``   discard -- the snapshot is from a *future* of this graph
            (or a different graph whose counter ran ahead); replay
            cannot reconcile it.
``P == G``  require the content fingerprint to match: equal version
            counters on different graphs are routine (two graphs built
            by the same loader), and a fingerprint mismatch means the
            counts belong to someone else.
``P < G``   replay ``deltas_since(P)``.  ``None`` (ring overrun) is a
            cold start.  Otherwise the element counts recorded at ``P``
            must equal the live counts minus the adds in the replayed
            run -- if not, the live graph is not a descendant of the
            snapshot's graph and everything is discarded.  Entries
            whose query the delta run touches are dropped
            (:func:`~repro.core.delta.touch_affects_query`); pinned
            ``edge_order`` plans are statistics-independent and always
            survive, mirroring the live plan cache.
========  ==============================================================

Restored plans are additionally re-validated structurally
(:func:`repro.matching.plan.plan_covers_query`) so even a
checksummed-but-hostile payload can never make the matcher skip a
constraint: a bad plan is refused, never executed.  Counts restore
verbatim only after the version/fingerprint/delta gauntlet above, which
is what keeps the differential guarantee -- a restored cache never
returns a count a cold compute would not.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.delta import delta_touch, query_touch_profile, touch_affects_query
from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.core.serialize import graph_to_dict, query_from_dict, query_to_dict
from repro.matching.plan import (
    ExpandStep,
    PlanStep,
    SeedStep,
    export_plans,
    plan_covers_query,
    restore_plans,
)

__all__ = [
    "MAGIC",
    "SNAPSHOT_FORMAT",
    "RestoreReport",
    "SnapshotStore",
    "graph_fingerprint",
    "persist_key",
    "restore_context",
    "set_persist_name",
    "snapshot_context",
]

#: first line of every snapshot file; a file not starting with this is
#: not ours and is ignored wholesale
MAGIC = "REPROSNAP"

#: bumped whenever the payload schema changes incompatibly; loads
#: reject files written by a *newer* format rather than misparse them
SNAPSHOT_FORMAT = 1

#: attribute carrying a graph's explicit persistence identity (the
#: protocol server names graphs; ``id(graph)`` does not survive a
#: process restart)
_PERSIST_NAME_ATTR = "_repro_persist_name"


# -- graph identity --------------------------------------------------------------


def set_persist_name(graph: PropertyGraph, name: str) -> None:
    """Give ``graph`` a stable persistence identity.

    The service pool keys contexts by graph *object*; across restarts
    only a name survives.  The protocol server calls this with the
    client-facing graph name on ``put_graph`` and for preloaded graphs.
    """
    setattr(graph, _PERSIST_NAME_ATTR, str(name))


def persist_key(graph: PropertyGraph) -> str:
    """The graph's snapshot key: its explicit persist name when one was
    set, else a content-derived key (same content -> same key, which is
    exactly the property an anonymous restart needs)."""
    name = getattr(graph, _PERSIST_NAME_ATTR, None)
    if name is not None:
        return f"g-{name}"
    return f"fp-{_content_sha(graph)[:16]}"


def _content_sha(graph: PropertyGraph) -> str:
    payload = graph_to_dict(graph)
    # the version counter is process history, not content: two graphs
    # with identical elements must fingerprint equal regardless of how
    # many mutations built them
    payload.pop("version", None)
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def graph_fingerprint(graph: PropertyGraph) -> Dict[str, Any]:
    """Content identity recorded in every snapshot: element counts (for
    the cheap delta-replay consistency check) and a sha256 over the
    canonical serialised content (for the exact ``P == G`` check)."""
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "sha256": _content_sha(graph),
    }


# -- the on-disk store -----------------------------------------------------------

_KEY_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def _slug(key: str) -> str:
    """Filesystem-safe file stem for ``key``: hostile characters are
    replaced and a key hash is appended so distinct keys can never
    collide on one file after sanitisation."""
    safe = _KEY_SAFE.sub("_", key)[:80]
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
    return f"{safe}.{digest}"


class SnapshotStore:
    """Checksummed, atomically-replaced snapshot files in one directory.

    File format (text header, JSON body)::

        REPROSNAP 1
        sha256:<hex of the body bytes>
        {...payload...}

    Writes land via ``tempfile`` + ``fsync`` + ``os.replace`` in the
    destination directory, so a crash mid-write leaves either the old
    snapshot or the new one -- never a torn file.  :meth:`load` is the
    crash-recovery boundary: every decay mode (missing file, truncated
    header, foreign magic, newer format, checksum mismatch, invalid
    JSON, non-dict body, unreadable file) returns ``None`` and bumps a
    counter; nothing raises out of it.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        #: load outcomes, for the service's ``persistence`` stats section
        self.counters: Dict[str, int] = {
            "saves": 0,
            "loads": 0,
            "load_misses": 0,
            "load_rejects": 0,
        }

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{_slug(key)}.snap")

    def save(self, key: str, payload: Mapping[str, Any]) -> str:
        """Durably write ``payload`` under ``key``; returns the path."""
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        body_bytes = body.encode("utf-8")
        digest = hashlib.sha256(body_bytes).hexdigest()
        data = f"{MAGIC} {SNAPSHOT_FORMAT}\nsha256:{digest}\n".encode("utf-8")
        data += body_bytes
        path = self.path_for(key)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".snap"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.counters["saves"] += 1
        return path

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None`` on any decay."""
        self.counters["loads"] += 1
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            self.counters["load_misses"] += 1
            return None
        payload = self._parse(raw)
        if payload is None:
            self.counters["load_rejects"] += 1
        return payload

    @staticmethod
    def _parse(raw: bytes) -> Optional[Dict[str, Any]]:
        try:
            magic_line, checksum_line, body = raw.split(b"\n", 2)
        except ValueError:
            return None  # truncated before the body
        parts = magic_line.decode("utf-8", "replace").split()
        if len(parts) != 2 or parts[0] != MAGIC:
            return None
        try:
            file_format = int(parts[1])
        except ValueError:
            return None
        if file_format > SNAPSHOT_FORMAT or file_format < 1:
            # a newer writer's file must be rejected, never misparsed
            return None
        checksum = checksum_line.decode("utf-8", "replace")
        if not checksum.startswith("sha256:"):
            return None
        if hashlib.sha256(body).hexdigest() != checksum[len("sha256:"):]:
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def delete(self, key: str) -> None:
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def keys_on_disk(self) -> List[str]:
        """File stems currently stored (diagnostics; keys are slugs)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            name[: -len(".snap")]
            for name in names
            if name.endswith(".snap") and not name.startswith(".tmp-")
        )


# -- payload assembly ------------------------------------------------------------


def snapshot_context(context, slow_log=None) -> Dict[str, Any]:
    """One JSON-safe payload holding the context's warm state.

    Exports the result cache and the graph's plan cache *after* their
    own delta-scoped validation, so the payload is consistent with
    ``graph.version`` at call time.  ``slow_log`` (a
    :class:`~repro.obs.slowlog.SlowQueryLog`) rides along when given --
    the service persists its log through the same store.
    """
    graph = context.graph
    results = [
        {"query": query_to_dict(query), "count": count, "limit": limit}
        for query, count, limit in context.cache.export_entries()
    ]
    plans = [
        {
            "query": query_to_dict(query),
            "edge_order": list(edge_order) if edge_order is not None else None,
            "steps": _steps_to_payload(steps),
        }
        for query, edge_order, steps in export_plans(graph)
    ]
    payload: Dict[str, Any] = {
        "kind": "context",
        "persisted_version": graph.version,
        "fingerprint": graph_fingerprint(graph),
        "results": results,
        "plans": plans,
    }
    if slow_log is not None:
        payload["slow_log"] = slow_log.export()
    return payload


def _steps_to_payload(steps: Sequence[PlanStep]) -> List[List[Any]]:
    out: List[List[Any]] = []
    for step in steps:
        if isinstance(step, SeedStep):
            out.append(["s", step.vid])
        else:
            out.append(["x", step.eid, step.anchor, step.new_vid])
    return out


def _steps_from_payload(raw: Iterable[Any]) -> List[PlanStep]:
    steps: List[PlanStep] = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or not item:
            raise ValueError(f"malformed plan step {item!r}")
        kind = item[0]
        if kind == "s" and len(item) == 2:
            steps.append(SeedStep(int(item[1])))
        elif kind == "x" and len(item) == 4:
            new_vid = item[3]
            steps.append(
                ExpandStep(
                    int(item[1]),
                    int(item[2]),
                    None if new_vid is None else int(new_vid),
                )
            )
        else:
            raise ValueError(f"malformed plan step {item!r}")
    return steps


# -- restore ---------------------------------------------------------------------


@dataclass
class RestoreReport:
    """What a :func:`restore_context` call did, for stats and tests."""

    status: str = "cold"  #: "restored" | "cold"
    reason: Optional[str] = None  #: why the payload was discarded, if it was
    results_restored: int = 0
    results_dropped: int = 0  #: delta-touched or malformed result entries
    plans_restored: int = 0
    plans_dropped: int = 0
    slow_log_restored: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "reason": self.reason,
            "results_restored": self.results_restored,
            "results_dropped": self.results_dropped,
            "plans_restored": self.plans_restored,
            "plans_dropped": self.plans_dropped,
            "slow_log_restored": self.slow_log_restored,
        }


def restore_context(context, payload: Mapping[str, Any], slow_log=None) -> RestoreReport:
    """Validate ``payload`` against the live graph and prewarm the caches.

    Implements the version/fingerprint/delta gauntlet documented in the
    module docstring.  Never raises on a decayed payload: a discard is a
    cold start with a ``reason``; individual malformed or delta-touched
    entries are dropped and counted while the rest restore.  The
    slow-query log (when present in the payload and ``slow_log`` is
    given) restores regardless of the cache verdict -- it is
    observability history, not answer state, and stale history is
    precisely what an operator debugging a restart wants to see.
    """
    report = RestoreReport()
    if slow_log is not None:
        entries = payload.get("slow_log")
        if isinstance(entries, list):
            report.slow_log_restored = slow_log.restore(entries)

    graph = context.graph
    try:
        persisted_version = int(payload["persisted_version"])
        fingerprint = payload["fingerprint"]
        persisted_vertices = int(fingerprint["vertices"])
        persisted_edges = int(fingerprint["edges"])
        persisted_sha = str(fingerprint["sha256"])
    except (KeyError, TypeError, ValueError):
        report.reason = "malformed"
        return report
    if payload.get("kind") != "context":
        report.reason = "malformed"
        return report

    touch = None
    if persisted_version > graph.version:
        report.reason = "version-ahead"
        return report
    if persisted_version == graph.version:
        live = graph_fingerprint(graph)
        if (
            live["vertices"] != persisted_vertices
            or live["edges"] != persisted_edges
            or live["sha256"] != persisted_sha
        ):
            report.reason = "fingerprint-mismatch"
            return report
    else:
        deltas_since = getattr(graph, "deltas_since", None)
        deltas = (
            deltas_since(persisted_version) if deltas_since is not None else None
        )
        if deltas is None:
            report.reason = "delta-overrun"
            return report
        added_vertices = sum(1 for record in deltas if record[0] == "v")
        added_edges = sum(1 for record in deltas if record[0] == "e")
        if (
            graph.num_vertices - added_vertices != persisted_vertices
            or graph.num_edges - added_edges != persisted_edges
        ):
            # the live graph is not a descendant of the snapshot's graph
            # (same key, different history); nothing in here is trustworthy
            report.reason = "lineage-mismatch"
            return report
        touch = delta_touch(deltas)

    results: List[Tuple[GraphQuery, int, Optional[int]]] = []
    for entry in payload.get("results", ()):
        parsed = _parse_result_entry(entry)
        if parsed is None:
            report.results_dropped += 1
            continue
        query, count, limit = parsed
        if touch is not None and touch_affects_query(
            touch, query_touch_profile(query)
        ):
            report.results_dropped += 1
            continue
        results.append((query, count, limit))
    report.results_restored = context.cache.restore_entries(results)
    report.results_dropped += len(results) - report.results_restored

    plans: List[Tuple[GraphQuery, Optional[Tuple[int, ...]], List[PlanStep]]] = []
    for entry in payload.get("plans", ()):
        parsed_plan = _parse_plan_entry(entry)
        if parsed_plan is None:
            report.plans_dropped += 1
            continue
        query, edge_order, steps = parsed_plan
        # pinned-order plans are pure functions of the query: deltas
        # cannot stale them (mirrors the live plan cache's scoping)
        if (
            touch is not None
            and edge_order is None
            and touch_affects_query(touch, query_touch_profile(query))
        ):
            report.plans_dropped += 1
            continue
        plans.append((query, edge_order, steps))
    report.plans_restored = restore_plans(graph, plans)
    report.plans_dropped += len(plans) - report.plans_restored

    report.status = "restored"
    return report


def _parse_result_entry(
    entry: Any,
) -> Optional[Tuple[GraphQuery, int, Optional[int]]]:
    try:
        query = query_from_dict(entry["query"])
        count = int(entry["count"])
        limit = entry["limit"]
        limit = None if limit is None else int(limit)
    except Exception:
        return None
    if count < 0 or (limit is not None and limit < 0):
        return None
    return query, count, limit


def _parse_plan_entry(
    entry: Any,
) -> Optional[Tuple[GraphQuery, Optional[Tuple[int, ...]], List[PlanStep]]]:
    try:
        query = query_from_dict(entry["query"])
        raw_order = entry["edge_order"]
        edge_order = (
            None if raw_order is None else tuple(int(e) for e in raw_order)
        )
        steps = _steps_from_payload(entry["steps"])
    except Exception:
        return None
    if not plan_covers_query(query, steps):
        return None
    return query, edge_order, steps
