"""Request-scoped tracing: ``Tracer``/``Span`` with monotonic timings,
nested spans and span attributes.

A tracer belongs to one request (one ``service.explain()`` call, one
matcher invocation in a test, one bench iteration).  Request-scoped
components (engine, rewriters, evaluator) receive it explicitly;
*shared* components (the per-graph :class:`PatternMatcher`, the
:class:`SliceEvaluator`) read the ambient tracer via
:func:`current_tracer`, which the request sets for its dynamic extent
with ``with tracer.activate(): ...``.  The ambient tracer is a
:class:`contextvars.ContextVar`, so concurrent requests on different
threads (or asyncio tasks) never see each other's spans.  Work handed
to a thread/async pool does not inherit the activation -- those
internals simply go untraced rather than racing on one span stack;
process-pool workers run their *own* tracer and ship a compact summary
back in the result envelope (:meth:`Tracer.summarize` /
:meth:`Tracer.attach_summary`).

Disabled tracing is the default and must stay near-free: the module
singleton :data:`NULL_TRACER` answers ``span()`` with one shared no-op
context manager -- no allocation, no timestamp.  ``REPRO_TRACE=1``
flips the session default (:func:`tracing_default`), mirroring the
``REPRO_COMPILED_MATCH`` switch.
"""

from __future__ import annotations

import contextvars
import os
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SPAN_ADMISSION",
    "SPAN_BLOCK",
    "SPAN_CLASSIFY",
    "SPAN_CSR_BUILD",
    "SPAN_EVALUATE",
    "SPAN_EXPLAIN",
    "SPAN_FALLBACK",
    "SPAN_MATCH",
    "SPAN_PLAN",
    "SPAN_PROGRAM_COMPILE",
    "SPAN_REWRITE",
    "SPAN_SUBGRAPH",
    "SPAN_WORKER",
    "Span",
    "Tracer",
    "current_tracer",
    "tracing_default",
]

# The span-kind vocabulary.  Everything the pipeline records uses one
# of these, so consumers (tests, the slow log, per-kind histograms)
# can rely on a closed set.
SPAN_EXPLAIN = "explain"  # one service.explain() end to end
SPAN_ADMISSION = "admission"  # waiting for / holding an admission lease
SPAN_CLASSIFY = "classify"  # problem classification (count + threshold)
SPAN_SUBGRAPH = "subgraph"  # subgraph explanation (discover/bounded MCS)
SPAN_REWRITE = "rewrite"  # rewriting search (coarse or search-tree)
SPAN_EVALUATE = "evaluate"  # one CandidateEvaluator.evaluate() batch
SPAN_MATCH = "match"  # one matcher call; attribute `op` in count/match/exists
SPAN_PLAN = "plan"  # query-plan acquisition; attribute `cached`
SPAN_CSR_BUILD = "csr_build"  # compiled backend: CSR array (re)build
SPAN_PROGRAM_COMPILE = "program_compile"  # compiled backend: kernel codegen
SPAN_WORKER = "worker"  # one process-pool worker's shipped summary
SPAN_BLOCK = "block"  # shard-affine slice answering (or missing) a block
SPAN_FALLBACK = "fallback"  # coordinator fallback after an affine miss


def tracing_default() -> bool:
    """Session-wide tracing default: ``REPRO_TRACE=1`` turns request
    tracing on for every surface that does not say otherwise."""
    return os.environ.get("REPRO_TRACE", "0") not in ("", "0")


class Span:
    """One timed node in the trace tree."""

    __slots__ = ("kind", "attributes", "children", "started_at", "elapsed_s")

    def __init__(self, kind: str, attributes: Optional[Dict[str, Any]] = None):
        self.kind = kind
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self.started_at = 0.0
        self.elapsed_s = 0.0

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form: the shape served in the protocol's ``trace``
        frame and stored on the report's ``trace`` section."""
        node: Dict[str, Any] = {"kind": self.kind, "elapsed_s": self.elapsed_s}
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.children:
            node["spans"] = [child.to_dict() for child in self.children]
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.kind!r}, {self.elapsed_s:.6f}s, {len(self.children)} children)"


class _SpanHandle:
    """Context manager produced by :meth:`Tracer.span`; opens the span
    on entry, pops it and stamps the monotonic elapsed time on exit
    (exceptions included, so aborted requests still trace)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", kind: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self.span = Span(kind, attributes)

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self.span
        if tracer._stack:
            tracer._stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        span.started_at = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.elapsed_s = time.perf_counter() - span.started_at
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        return False


class _Activation:
    """``with tracer.activate():`` -- installs the tracer as the ambient
    one for the dynamic extent, restoring the previous on exit."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    def __enter__(self):
        self._token = _ACTIVE_TRACER.set(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _ACTIVE_TRACER.reset(self._token)
            self._token = None
        return False


class Tracer:
    """Collects one request's span tree.  Not thread-safe by design --
    a tracer belongs to exactly one request thread; cross-thread and
    cross-process work reports back via :meth:`attach_summary`."""

    enabled = True

    __slots__ = ("roots", "_stack")

    def __init__(self):
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, kind: str, **attributes: Any) -> _SpanHandle:
        return _SpanHandle(self, kind, attributes)

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span (no-op when no
        span is open, so callers never need to guard)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    def activate(self) -> _Activation:
        return _Activation(self)

    def attach_summary(
        self, kind: str, summary: Dict[str, Dict[str, Any]], **attributes: Any
    ) -> None:
        """Graft a compact remote summary (a :meth:`summarize` dict that
        crossed a process boundary) under the current span as one
        completed ``kind`` span whose children replay the remote kinds."""
        span = Span(kind, attributes)
        total = 0.0
        for child_kind in sorted(summary):
            agg = summary[child_kind]
            child = Span(child_kind, {"count": int(agg.get("count", 0))})
            child.elapsed_s = float(agg.get("total_s", 0.0))
            span.children.append(child)
            total += child.elapsed_s
        span.elapsed_s = total
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def kinds(self) -> set:
        """The set of span kinds present anywhere in the tree."""
        return {span.kind for root in self.roots for span in root.walk()}

    def summarize(self) -> Dict[str, Dict[str, Any]]:
        """Aggregate the tree per span kind -- ``{kind: {count,
        total_s}}``.  Compact, picklable and JSON-ready: the worker
        result-envelope form and the slow-log profile form.  A span
        grafted by :meth:`attach_summary` replays several remote spans
        as one node carrying a ``count`` attribute; that count (not 1)
        is what re-aggregates, so summaries survive nesting across
        process boundaries without under-counting."""
        summary: Dict[str, Dict[str, Any]] = {}
        for root in self.roots:
            for span in root.walk():
                agg = summary.setdefault(span.kind, {"count": 0, "total_s": 0.0})
                agg["count"] += int(span.attributes.get("count", 1))
                agg["total_s"] += span.elapsed_s
        return summary

    def to_dict(self) -> Optional[Dict[str, Any]]:
        """The span tree as one JSON-ready dict (``None`` when nothing
        was recorded; a synthetic ``trace`` root when the request left
        several top-level spans)."""
        if not self.roots:
            return None
        if len(self.roots) == 1:
            return self.roots[0].to_dict()
        wrapper: Dict[str, Any] = {
            "kind": "trace",
            "elapsed_s": sum(root.elapsed_s for root in self.roots),
            "spans": [root.to_dict() for root in self.roots],
        }
        return wrapper


class _NullSpanHandle:
    """Shared, allocation-free no-op span."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = Span("null")
_NULL_SPAN_HANDLE = _NullSpanHandle()


class NullTracer:
    """The disabled fast path: every operation is a no-op returning a
    shared singleton, so ``with current_tracer().span(...)`` costs one
    context-var read and two trivial calls when tracing is off."""

    enabled = False

    __slots__ = ()

    def span(self, kind: str, **attributes: Any) -> _NullSpanHandle:
        return _NULL_SPAN_HANDLE

    def annotate(self, **attributes: Any) -> None:
        return None

    def activate(self) -> _Activation:
        return _Activation(self)  # type: ignore[arg-type]

    def attach_summary(self, kind, summary, **attributes) -> None:
        return None

    def kinds(self) -> set:
        return set()

    def summarize(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def to_dict(self) -> None:
        return None


NULL_TRACER = NullTracer()

_ACTIVE_TRACER: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)


def current_tracer():
    """The ambient tracer of the calling context (:data:`NULL_TRACER`
    when no request activated one)."""
    return _ACTIVE_TRACER.get()
