"""Tiny stdlib HTTP responder for Prometheus scrapes.

``python -m repro serve --metrics-port 9100`` starts one next to the
protocol server; ``GET /metrics`` (or ``/``) answers the registry's
text exposition.  A daemon ``ThreadingHTTPServer`` is plenty -- scrape
traffic is one request every few seconds."""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["MetricsServerHandle", "start_metrics_server"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "only /metrics is served here")
            return
        body = self.server.registry.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes must not spam the server's stdout


class _MetricsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    registry: MetricsRegistry


class MetricsServerHandle:
    """A running metrics endpoint; ``close()`` stops it."""

    def __init__(self, server: _MetricsHTTPServer, thread: threading.Thread):
        self._server = server
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def port(self) -> int:
        return self.address[1]

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def start_metrics_server(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
) -> MetricsServerHandle:
    """Serve ``registry`` (default: the process-wide one) on
    ``host:port``; ``port=0`` binds an ephemeral port (tests)."""
    server = _MetricsHTTPServer((host, port), _MetricsRequestHandler)
    server.registry = registry if registry is not None else REGISTRY
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return MetricsServerHandle(server, thread)
