"""Observability: request-scoped tracing, process-wide metrics and the
slow-query log (ISSUE 9).

Zero third-party dependencies by design -- :mod:`repro.obs` sits below
every other package (``exec``, ``matching``, ``shard``, ``service``,
``server`` all import it) and must never import back up the stack.

Three layers:

- :mod:`repro.obs.tracing` -- ``Tracer``/``Span`` with monotonic
  timings, nested spans and span attributes.  A request activates its
  tracer ambiently (:func:`~repro.obs.tracing.current_tracer`), so
  shared components such as the per-graph :class:`PatternMatcher` can
  record spans without carrying request state.  The
  :data:`~repro.obs.tracing.NULL_TRACER` fast path makes disabled
  tracing allocation-free.
- :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket latency
  histograms in a process-wide :data:`~repro.obs.metrics.REGISTRY`,
  renderable as Prometheus text exposition format
  (:mod:`repro.obs.promhttp` serves it over stdlib HTTP).
- :mod:`repro.obs.slowlog` -- a bounded log of the N slowest explains
  with their query signature, span summary and cache/fallback profile.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.promhttp import start_metrics_server
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import (
    NULL_TRACER,
    SPAN_ADMISSION,
    SPAN_BLOCK,
    SPAN_CLASSIFY,
    SPAN_CSR_BUILD,
    SPAN_EVALUATE,
    SPAN_EXPLAIN,
    SPAN_FALLBACK,
    SPAN_MATCH,
    SPAN_PLAN,
    SPAN_PROGRAM_COMPILE,
    SPAN_REWRITE,
    SPAN_SUBGRAPH,
    SPAN_WORKER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    tracing_default,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "REGISTRY",
    "SPAN_ADMISSION",
    "SPAN_BLOCK",
    "SPAN_CLASSIFY",
    "SPAN_CSR_BUILD",
    "SPAN_EVALUATE",
    "SPAN_EXPLAIN",
    "SPAN_FALLBACK",
    "SPAN_MATCH",
    "SPAN_PLAN",
    "SPAN_PROGRAM_COMPILE",
    "SPAN_REWRITE",
    "SPAN_SUBGRAPH",
    "SPAN_WORKER",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "current_tracer",
    "start_metrics_server",
    "tracing_default",
]
