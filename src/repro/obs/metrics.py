"""Process-wide metrics: counters, gauges and fixed-bucket latency
histograms, with Prometheus text exposition.

One :data:`REGISTRY` serves the whole process (the ISSUE's
"registered process-wide"): the service, the budget pools and the
protocol server all write to it, `service.stats()` folds a snapshot
into the unified schema's ``metrics`` section, and
:mod:`repro.obs.promhttp` renders :meth:`MetricsRegistry.render` over
HTTP.  Tests and benches that need isolation construct their own
:class:`MetricsRegistry`.

Histogram semantics follow Prometheus: a fixed ascending bound list,
``le``-inclusive buckets, an implicit ``+Inf`` bucket, cumulative
counts only at render time (the in-memory counts are per-bucket so
snapshots stay cheap to diff).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
]

# Sub-millisecond to ten seconds: wide enough for a matcher call and an
# LDBC-scale rewrite search alike.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_suffix(labels: LabelItems) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Set-to-current-value gauge."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with ``le``-inclusive bounds and an
    implicit ``+Inf`` bucket."""

    __slots__ = ("name", "help", "labels", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labels: LabelItems = (),
    ):
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds: {bounds}")
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot: +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # bisect_left finds the first bound >= value: exactly the
        # le-inclusive bucket (a value equal to a bound lands in that
        # bound's bucket, one past the last bound lands in +Inf).
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """Get-or-create registry of named (and optionally labelled)
    metrics.  Metric handles are cheap to cache; registration is
    idempotent and type-checked."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}

    @staticmethod
    def _label_items(labels: Optional[Dict[str, Any]]) -> LabelItems:
        if not labels:
            return ()
        return tuple(sorted((str(key), str(value)) for key, value in labels.items()))

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        items = self._label_items(labels)
        key = (name, items)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help=help, labels=items, **kwargs)
                self._metrics[key] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "", labels: Optional[Dict[str, Any]] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Optional[Dict[str, Any]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Optional[Dict[str, Any]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def _sorted_metrics(self):
        with self._lock:
            metrics = list(self._metrics.items())
        metrics.sort(key=lambda item: item[0])
        return metrics

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready snapshot: the unified-stats ``metrics`` section."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Any] = {}
        for (name, labels), metric in self._sorted_metrics():
            key = name + _label_suffix(labels)
            if isinstance(metric, Counter):
                counters[key] = metric.snapshot()
            elif isinstance(metric, Gauge):
                gauges[key] = metric.snapshot()
            else:
                histograms[key] = metric.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines = []
        seen_headers = set()
        for (name, labels), metric in self._sorted_metrics():
            if isinstance(metric, Counter):
                kind = "counter"
            elif isinstance(metric, Gauge):
                kind = "gauge"
            else:
                kind = "histogram"
            if name not in seen_headers:
                seen_headers.add(name)
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {kind}")
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_label_suffix(labels)} {metric.snapshot()}")
                continue
            snap = metric.snapshot()
            cumulative = 0
            for bound, count in zip(snap["buckets"], snap["counts"]):
                cumulative += count
                le_labels = labels + (("le", repr(bound)),)
                lines.append(f"{name}_bucket{_label_suffix(le_labels)} {cumulative}")
            cumulative += snap["counts"][-1]
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_label_suffix(inf_labels)} {cumulative}")
            lines.append(f"{name}_sum{_label_suffix(labels)} {snap['sum']}")
            lines.append(f"{name}_count{_label_suffix(labels)} {snap['count']}")
        return "\n".join(lines) + "\n"


# The process-wide registry every production surface writes to.
REGISTRY = MetricsRegistry()
