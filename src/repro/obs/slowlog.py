"""The slow-query log: a bounded, thread-safe record of the N
slowest explains.

Entries are plain JSON-ready dicts produced by the service after each
explain -- query signature, problem class, elapsed seconds, matcher
steps, a per-span-kind profile, the cache hit/miss delta, shard
fallbacks and whether the evaluation budget truncated the search.
The log keeps the *slowest* ``capacity`` entries seen so far (a
min-heap on elapsed time evicts the quickest), so one burst of cheap
queries can never flush the interesting outliers.

The log is also a persistence participant: :meth:`export` /
:meth:`restore` move the retained entries through
:mod:`repro.persist` so the outliers observed before a restart stay
visible after it (they are often exactly the queries an operator is
restarting *because of*)."""

from __future__ import annotations

import copy
import heapq
import itertools
import math
import threading
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["SlowQueryLog"]


def _coerce_elapsed(value: Any) -> float:
    """Defensive elapsed-seconds coercion: missing, non-numeric, NaN
    and infinite values all become 0.0 so a single malformed entry can
    neither raise out of ``record()`` nor poison the heap ordering
    (NaN compares false against everything, which silently breaks the
    min-heap invariant)."""
    try:
        elapsed = float(value)
    except (TypeError, ValueError):
        return 0.0
    if not math.isfinite(elapsed):
        return 0.0
    return elapsed


class SlowQueryLog:
    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._seq = itertools.count()
        # heap of (elapsed_s, seq, entry): the root is the *fastest*
        # retained entry, i.e. the eviction candidate
        self._heap: List[Any] = []

    def record(self, entry: Dict[str, Any]) -> bool:
        """Offer one entry; returns whether it was retained.

        The entry is frozen (deep-copied) at record time, so later
        caller-side mutation of the offered dict -- or of anything the
        service keeps a live reference to, like a profile accumulator --
        cannot corrupt the retained log.
        """
        elapsed = _coerce_elapsed(entry.get("elapsed_s", 0.0))
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(
                    self._heap, (elapsed, next(self._seq), copy.deepcopy(entry))
                )
                return True
            if elapsed <= self._heap[0][0]:
                return False
            heapq.heapreplace(
                self._heap, (elapsed, next(self._seq), copy.deepcopy(entry))
            )
            return True

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Slowest first; ties broken oldest-first (stable seq).

        Returned entries are deep copies: nested mutable values (the
        per-span-kind profile dict, the cache delta) must not alias the
        retained heap, or a caller mutating its result would rewrite
        history for every later reader.
        """
        with self._lock:
            ranked = sorted(self._heap, key=lambda item: (-item[0], item[1]))
            entries = [copy.deepcopy(entry) for _, _, entry in ranked]
        if limit is not None:
            entries = entries[: max(0, limit)]
        return entries

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    # -- persistence seam ------------------------------------------------------

    def export(self) -> List[Dict[str, Any]]:
        """JSON-ready snapshot of the retained entries, slowest first."""
        return self.entries()

    def restore(self, entries: Iterable[Dict[str, Any]]) -> int:
        """Re-offer persisted entries; returns how many were retained.

        Restores go through :meth:`record`, so capacity, elapsed
        coercion and freezing all apply -- a decayed snapshot can only
        cost retained history, never corrupt the live heap.
        """
        restored = 0
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            if self.record(entry):
                restored += 1
        return restored

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
