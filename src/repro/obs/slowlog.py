"""The slow-query log: a bounded, thread-safe record of the N
slowest explains.

Entries are plain JSON-ready dicts produced by the service after each
explain -- query signature, problem class, elapsed seconds, matcher
steps, a per-span-kind profile, the cache hit/miss delta, shard
fallbacks and whether the evaluation budget truncated the search.
The log keeps the *slowest* ``capacity`` entries seen so far (a
min-heap on elapsed time evicts the quickest), so one burst of cheap
queries can never flush the interesting outliers."""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._seq = itertools.count()
        # heap of (elapsed_s, seq, entry): the root is the *fastest*
        # retained entry, i.e. the eviction candidate
        self._heap: List[Any] = []

    def record(self, entry: Dict[str, Any]) -> bool:
        """Offer one entry; returns whether it was retained."""
        elapsed = float(entry.get("elapsed_s", 0.0))
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, (elapsed, next(self._seq), entry))
                return True
            if elapsed <= self._heap[0][0]:
                return False
            heapq.heapreplace(self._heap, (elapsed, next(self._seq), entry))
            return True

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Slowest first; ties broken oldest-first (stable seq)."""
        with self._lock:
            ranked = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        entries = [dict(entry) for _, _, entry in ranked]
        if limit is not None:
            entries = entries[: max(0, limit)]
        return entries

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
