"""BOUNDEDMCS -- subgraph explanations under a cardinality bound (Sec. 4.2.2).

For why-so-few and why-so-many queries the success criterion of the
lattice search is not existence but a *cardinality bound*:

* **why-so-many** (``C(Gq) > Cthr``): a subquery succeeds while its
  (bounded) cardinality stays at most ``Cthr``; the traversal grows the
  common subgraph until joining an element blows the result size past the
  bound.  The differential contains exactly the elements where the
  blow-up happens.
* **why-so-few** (``0 <= C(Gq) < Cthr``): a subquery succeeds while it
  still delivers at least ``Cthr`` results; the differential pinpoints
  the elements whose joining collapses the cardinality.  With
  ``Cthr = 1`` this degenerates to DISCOVERMCS.

Counting is always bounded (``limit = bound + 1`` resp. ``limit =
bound``), so no evaluation enumerates more matches than the decision
needs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.explain.discover_mcs import McsResult, SubgraphLatticeSearch
from repro.explain.preferences import UserPreferences
from repro.matching.matcher import PatternMatcher
from repro.metrics.cardinality import CardinalityProblem, CardinalityThreshold


def bounded_mcs(
    graph: PropertyGraph,
    query: GraphQuery,
    threshold: CardinalityThreshold,
    problem: Optional[CardinalityProblem] = None,
    strategy: str = "frontier",
    edge_order: Optional[Sequence[int]] = None,
    preferences: Optional[UserPreferences] = None,
    max_evaluations: Optional[int] = None,
    matcher: Optional[PatternMatcher] = None,
) -> McsResult:
    """BOUNDEDMCS (Sec. 4.2.2): subgraph explanation for a cardinality bound.

    ``problem`` selects the direction; when omitted it is derived from the
    query's own (bounded) cardinality against ``threshold``.  Supported
    problems: ``TOO_MANY``, ``TOO_FEW`` and ``EMPTY`` (the latter equals
    DISCOVERMCS semantics with a lower bound of max(1, threshold.lower)).
    """
    m = matcher if matcher is not None else PatternMatcher(graph)

    if problem is None:
        observed = m.count(query, limit=threshold.probe_limit)
        problem = threshold.classify(observed)
    if problem == CardinalityProblem.EXPECTED:
        raise ValueError(
            "query already satisfies the cardinality threshold; "
            "nothing to explain"
        )

    if problem == CardinalityProblem.TOO_MANY:
        if threshold.upper is None:
            raise ValueError("why-so-many needs an upper cardinality bound")
        upper = threshold.upper

        def success(subquery: GraphQuery) -> Tuple[bool, int]:
            card = m.count(subquery, limit=upper + 1)
            return card <= upper, card

    else:  # TOO_FEW or EMPTY
        lower = threshold.lower if threshold.lower is not None else 1
        lower = max(1, lower)

        def success(subquery: GraphQuery) -> Tuple[bool, int]:
            card = m.count(subquery, limit=lower)
            return card >= lower, card

    too_many = problem == CardinalityProblem.TOO_MANY
    search = SubgraphLatticeSearch(
        graph,
        query,
        success,
        strategy=strategy,
        edge_order=edge_order,
        preferences=preferences,
        annotate=True,
        cardinality_mode=too_many,
        max_evaluations=max_evaluations,
        failure_verb=(
            "push the cardinality past the upper bound"
            if too_many
            else "drop the cardinality below the bound"
        ),
    )
    return search.run()
