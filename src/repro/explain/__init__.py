"""Subgraph-based explanations (Chapter 4): DISCOVERMCS and BOUNDEDMCS."""

from repro.explain.bounded_mcs import bounded_mcs
from repro.explain.differential import (
    DifferentialGraph,
    FailureAnnotation,
    FailureReason,
    merge_components,
)
from repro.explain.discover_mcs import (
    McsResult,
    SearchStats,
    SubgraphLatticeSearch,
    discover_mcs,
)
from repro.explain.preferences import (
    UserPreferences,
    explanation_rank,
    preferred_traversal_order,
    rank_explanations,
)

__all__ = [
    "DifferentialGraph",
    "FailureAnnotation",
    "FailureReason",
    "McsResult",
    "SearchStats",
    "SubgraphLatticeSearch",
    "UserPreferences",
    "bounded_mcs",
    "discover_mcs",
    "explanation_rank",
    "merge_components",
    "preferred_traversal_order",
    "rank_explanations",
]
