"""DISCOVERMCS -- subgraph-based explanations for why-empty queries (Sec. 4.2.1).

The algorithm traverses the *query* graph, evaluating growing connected
subqueries against the data graph, and returns the maximum common
connected subgraph(s) -- the largest query parts that still deliver
results -- together with differential graphs annotating why each excluded
element failed.

The same lattice search skeleton, parameterised by the success criterion,
also powers BOUNDEDMCS (:mod:`repro.explain.bounded_mcs`); Sec. 4.2's two
algorithms differ exactly in that criterion (existence vs. cardinality
bound).

Strategies (Sec. 4.3):

``"frontier"``
    best-first exploration of all connected subquery extensions; finds a
    true *maximum* common subgraph (within the evaluation budget).
``"single-path"``
    follows one traversal path (selectivity- or preference-ordered,
    Sec. 4.3.2/4.4.2); one evaluation per query edge, returns a *maximal*
    common subgraph that may be smaller than the maximum.

Weakly connected components of the query are processed separately
(Sec. 4.3.1) and merged; remainders disconnected by failures are explored
as separate seeds (Sec. 4.3.3) because every edge seeds the frontier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.explain.differential import (
    DifferentialGraph,
    FailureAnnotation,
    FailureReason,
    merge_components,
)
from repro.explain.preferences import (
    UserPreferences,
    preferred_traversal_order,
    rank_explanations,
)
from repro.matching.matcher import PatternMatcher

#: ``success_fn(subquery) -> (succeeded, bounded_cardinality_probe)``
SuccessFn = Callable[[GraphQuery], Tuple[bool, int]]


@dataclass
class SearchStats:
    """Instrumentation of one explanation search."""

    evaluations: int = 0
    annotation_evaluations: int = 0
    elapsed: float = 0.0
    budget_exhausted: bool = False

    def merge(self, other: "SearchStats") -> None:
        self.evaluations += other.evaluations
        self.annotation_evaluations += other.annotation_evaluations
        self.elapsed += other.elapsed
        self.budget_exhausted |= other.budget_exhausted


@dataclass
class McsResult:
    """Outcome of DISCOVERMCS / BOUNDEDMCS."""

    #: merged best explanation over all query components
    differential: DifferentialGraph
    #: best explanation per weakly connected component
    components: List[DifferentialGraph]
    #: alternative maximal explanations, rank-ordered (Sec. 4.4.3)
    alternatives: List[DifferentialGraph]
    stats: SearchStats

    @property
    def mcs(self) -> GraphQuery:
        """The maximum common subgraph as a runnable query."""
        return self.differential.mcs_query()


class SubgraphLatticeSearch:
    """Shared engine of the two subgraph-explanation algorithms."""

    def __init__(
        self,
        graph: PropertyGraph,
        query: GraphQuery,
        success_fn: SuccessFn,
        strategy: str = "frontier",
        edge_order: Optional[Sequence[int]] = None,
        preferences: Optional[UserPreferences] = None,
        annotate: bool = True,
        cardinality_mode: bool = False,
        max_evaluations: Optional[int] = None,
        failure_verb: str = "eliminate all matches",
    ) -> None:
        if strategy not in ("frontier", "single-path"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.failure_verb = failure_verb
        self.graph = graph
        self.query = query
        self.success_fn = success_fn
        self.strategy = strategy
        self.preferences = preferences
        self.annotate = annotate
        self.cardinality_mode = cardinality_mode
        self.max_evaluations = max_evaluations
        self.stats = SearchStats()
        self._order = list(
            edge_order
            if edge_order is not None
            else preferred_traversal_order(query, preferences, graph)
        )
        self._state_cache: Dict[FrozenSet[int], Tuple[bool, int]] = {}

    # -- evaluation helpers ---------------------------------------------------

    def _budget_left(self) -> bool:
        return (
            self.max_evaluations is None
            or self.stats.evaluations + self.stats.annotation_evaluations
            < self.max_evaluations
        )

    def _subquery(self, edges: FrozenSet[int], vertices: FrozenSet[int]) -> GraphQuery:
        return self.query.subquery(vertices, edges)

    def _vertices_of(self, edges: FrozenSet[int]) -> FrozenSet[int]:
        out: Set[int] = set()
        for eid in edges:
            edge = self.query.edge(eid)
            out.add(edge.source)
            out.add(edge.target)
        return frozenset(out)

    def _evaluate(self, edges: FrozenSet[int], vertices: FrozenSet[int]) -> Tuple[bool, int]:
        key = edges | frozenset(-(v + 1) for v in vertices - self._vertices_of(edges))
        cached = self._state_cache.get(key)
        if cached is not None:
            return cached
        self.stats.evaluations += 1
        outcome = self.success_fn(self._subquery(edges, vertices))
        self._state_cache[key] = outcome
        return outcome

    # -- failure diagnosis ------------------------------------------------------

    def _annotate_failure(
        self,
        base_edges: FrozenSet[int],
        base_vertices: FrozenSet[int],
        eid: int,
    ) -> FailureAnnotation:
        """Pin down why extending by ``eid`` failed (lazy provenance).

        In cardinality mode the element joined structurally but violated
        the bound, so no stripping experiments are needed.
        """
        if self.cardinality_mode:
            return FailureAnnotation(
                ("edge", eid),
                FailureReason.CARDINALITY,
                "joining this edge violates the cardinality bound",
            )
        edge = self.query.edge(eid)
        new_vertices = sorted({edge.source, edge.target} - base_vertices)
        if not self.annotate or not self._budget_left():
            return FailureAnnotation(("edge", eid), FailureReason.TOPOLOGY)
        verb = self.failure_verb

        def probe(
            strip_edge_preds: bool,
            strip_types: bool,
            strip_vertices: Tuple[int, ...] = (),
        ) -> bool:
            variant = self._subquery(
                base_edges | {eid}, base_vertices | {edge.source, edge.target}
            )
            target = variant.edge(eid)
            if strip_edge_preds:
                target.predicates = {}
            if strip_types:
                target.types = None
            for vid in strip_vertices:
                variant.vertex(vid).predicates = {}
            self.stats.annotation_evaluations += 1
            ok, _ = self.success_fn(variant)
            return ok

        def culprit_attrs(ref: Tuple[str, int]) -> List[str]:
            """Which single predicates suffice to unblock the extension."""
            kind, ident = ref
            preds = (
                self.query.edge(ident).predicates
                if kind == "edge"
                else self.query.vertex(ident).predicates
            )
            culprits = []
            for attr in sorted(preds):
                if not self._budget_left():
                    break
                variant = self._subquery(
                    base_edges | {eid},
                    base_vertices | {edge.source, edge.target},
                )
                holder = (
                    variant.edge(ident).predicates
                    if kind == "edge"
                    else variant.vertex(ident).predicates
                )
                del holder[attr]
                self.stats.annotation_evaluations += 1
                ok, _ = self.success_fn(variant)
                if ok:
                    culprits.append(attr)
            return culprits

        # Minimal-culprit cascade: each probe strips exactly one constraint
        # class; the first class whose removal unblocks the extension is
        # the diagnosis.
        if edge.predicates and probe(True, False):
            attrs = culprit_attrs(("edge", eid)) or sorted(edge.predicates)
            return FailureAnnotation(
                ("edge", eid),
                FailureReason.PREDICATE,
                f"edge predicates {attrs} {verb}",
            )
        for vid in new_vertices:
            if self.query.vertex(vid).predicates and probe(False, False, (vid,)):
                attrs = culprit_attrs(("vertex", vid)) or sorted(
                    self.query.vertex(vid).predicates
                )
                return FailureAnnotation(
                    ("vertex", vid),
                    FailureReason.PREDICATE,
                    f"vertex predicates {attrs} {verb}",
                )
        if edge.types is not None and probe(False, True):
            return FailureAnnotation(
                ("edge", eid),
                FailureReason.TYPE,
                f"no {'/'.join(sorted(edge.types))} edge connects here",
            )
        # No single class suffices: try stripping everything at once.
        stripable = tuple(
            vid for vid in new_vertices if self.query.vertex(vid).predicates
        )
        if probe(True, True, stripable) and (
            edge.predicates or edge.types is not None or stripable
        ):
            return FailureAnnotation(
                ("edge", eid),
                FailureReason.PREDICATE,
                f"only the combination of constraints on edge {eid} and "
                f"vertices {list(stripable)} {verb}",
            )
        return FailureAnnotation(
            ("edge", eid),
            FailureReason.TOPOLOGY,
            "no data edge connects the matched part here",
        )

    # -- component searches ----------------------------------------------------

    def run_component(self, vertices: FrozenSet[int]) -> List[DifferentialGraph]:
        """Explanations for one weakly connected component, best first."""
        component = self.query.subquery(vertices)
        edges = frozenset(component.edge_ids)
        if not edges:
            return [self._singleton_vertex(component, next(iter(vertices)))]
        if self.strategy == "single-path":
            return [self._single_path(component)]
        return self._frontier(component)

    def _singleton_vertex(self, component: GraphQuery, vid: int) -> DifferentialGraph:
        ok, card = self._evaluate(frozenset(), frozenset({vid}))
        if ok:
            return DifferentialGraph(
                component, frozenset(), frozenset({vid}), {}, card
            )
        annotation = FailureAnnotation(
            ("vertex", vid),
            FailureReason.CARDINALITY if self.cardinality_mode else FailureReason.PREDICATE,
            "isolated query vertex fails on its own",
        )
        return DifferentialGraph(
            component, frozenset(), frozenset(), {("vertex", vid): annotation}, 0
        )

    def _frontier(self, component: GraphQuery) -> List[DifferentialGraph]:
        """Best-first lattice exploration over connected edge sets."""
        order = [eid for eid in self._order if component.has_edge(eid)]
        succeeded: Dict[FrozenSet[int], int] = {}
        # eid -> (base size the annotation was computed from, annotation);
        # a diagnosis against a larger matched part is more precise.
        failures: Dict[int, Tuple[int, FailureAnnotation]] = {}
        visited: Set[FrozenSet[int]] = set()
        stack: List[FrozenSet[int]] = []

        def record_failure(eid: int, base: FrozenSet[int], base_v: FrozenSet[int]) -> None:
            known = failures.get(eid)
            if known is not None and known[0] >= len(base):
                return
            failures[eid] = (len(base), self._annotate_failure(base, base_v, eid))

        for eid in order:
            state = frozenset({eid})
            visited.add(state)
            if not self._budget_left():
                self.stats.budget_exhausted = True
                break
            ok, card = self._evaluate(state, self._vertices_of(state))
            if ok:
                succeeded[state] = card
                stack.append(state)
            else:
                record_failure(eid, frozenset(), frozenset())

        if not succeeded:
            return [
                self._vertex_fallback(
                    component, {eid: ann for eid, (_, ann) in failures.items()}
                )
            ]

        while stack and self._budget_left():
            stack.sort(key=len)
            state = stack.pop()  # largest first
            state_vertices = self._vertices_of(state)
            for eid in order:
                if eid in state:
                    continue
                edge = component.edge(eid)
                if (
                    edge.source not in state_vertices
                    and edge.target not in state_vertices
                ):
                    continue
                nxt = state | {eid}
                if nxt in visited:
                    continue
                visited.add(nxt)
                if not self._budget_left():
                    self.stats.budget_exhausted = True
                    break
                ok, card = self._evaluate(nxt, self._vertices_of(nxt))
                if ok:
                    succeeded[nxt] = card
                    stack.append(nxt)
                else:
                    record_failure(eid, state, state_vertices)
        failed_extensions = {eid: ann for eid, (_, ann) in failures.items()}

        maximal = [
            s
            for s in succeeded
            if not any(s < other for other in succeeded)
        ]
        maximal.sort(key=lambda s: (-len(s), sorted(s)))
        return [
            self._build_differential(component, s, succeeded[s], failed_extensions)
            for s in maximal
        ]

    def _single_path(self, component: GraphQuery) -> DifferentialGraph:
        """Greedy traversal along one (preference-ordered) path, Sec. 4.3.2."""
        order = [eid for eid in self._order if component.has_edge(eid)]
        failed: Dict[int, FailureAnnotation] = {}
        state: FrozenSet[int] = frozenset()
        covered: FrozenSet[int] = frozenset()
        card = 0
        progress = True
        tried: Set[int] = set()
        while progress and self._budget_left():
            progress = False
            for eid in order:
                if eid in state or eid in tried:
                    continue
                edge = component.edge(eid)
                if state and (
                    edge.source not in covered and edge.target not in covered
                ):
                    continue
                tried.add(eid)
                nxt = state | {eid}
                nxt_vertices = self._vertices_of(nxt)
                ok, probe = self._evaluate(nxt, nxt_vertices)
                if ok:
                    state, covered, card = nxt, nxt_vertices, probe
                else:
                    failed[eid] = self._annotate_failure(state, covered, eid)
                progress = True
                break
        if not state:
            return self._vertex_fallback(component, failed)
        return self._build_differential(component, state, card, failed)

    def _vertex_fallback(
        self, component: GraphQuery, failed: Dict[int, FailureAnnotation]
    ) -> DifferentialGraph:
        """No single edge succeeds: fall back to per-vertex evaluation.

        The common subgraph degenerates to the satisfiable vertices (an
        unconnected vertex set would not be a *connected* subgraph, so we
        keep the best single vertex and annotate the rest).
        """
        best: Optional[Tuple[int, int]] = None
        annotations: Dict[Tuple[str, int], FailureAnnotation] = {}
        for eid, ann in failed.items():
            annotations.setdefault(ann.element, ann)
            if ann.element != ("edge", eid):
                annotations.setdefault(
                    ("edge", eid),
                    FailureAnnotation(
                        ("edge", eid),
                        ann.reason,
                        ann.detail or f"fails together with {ann.element}",
                    ),
                )
        for vid in sorted(component.vertex_ids):
            if not self._budget_left():
                self.stats.budget_exhausted = True
                break
            ok, card = self._evaluate(frozenset(), frozenset({vid}))
            if ok and (best is None or card > best[1]):
                best = (vid, card)
            elif not ok:
                annotations[("vertex", vid)] = FailureAnnotation(
                    ("vertex", vid),
                    FailureReason.CARDINALITY
                    if self.cardinality_mode
                    else FailureReason.PREDICATE,
                    "vertex alone fails the criterion",
                )
        if best is None:
            return DifferentialGraph(
                component, frozenset(), frozenset(), annotations, 0
            )
        return DifferentialGraph(
            component, frozenset(), frozenset({best[0]}), annotations, best[1]
        )

    def _build_differential(
        self,
        component: GraphQuery,
        state: FrozenSet[int],
        cardinality: int,
        failed: Dict[int, FailureAnnotation],
    ) -> DifferentialGraph:
        vertices = self._vertices_of(state)
        failed = dict(failed)
        # A failed extension may have been recorded against a different
        # base state than the reported MCS (e.g. a cycle-closing edge fails
        # from whichever side the frontier tried first).  Diagnose missing
        # adjacent edges on demand so the differential is fully annotated.
        for eid in component.edge_ids - state:
            if eid in failed:
                continue
            edge = component.edge(eid)
            if state and not (
                edge.source in vertices or edge.target in vertices
            ):
                continue
            if self._budget_left():
                failed[eid] = self._annotate_failure(state, vertices, eid)
        # Key each diagnosis by the element it blames; fill the remaining
        # missing elements with UNREACHED placeholders.
        annotations: Dict[Tuple[str, int], FailureAnnotation] = {}
        for eid, ann in failed.items():
            if eid in state:
                continue
            kind, ident = ann.element
            blamed_in_mcs = (kind == "vertex" and ident in vertices) or (
                kind == "edge" and ident in state
            )
            if not blamed_in_mcs:
                annotations.setdefault(ann.element, ann)
            annotations.setdefault(
                ("edge", eid),
                FailureAnnotation(
                    ("edge", eid),
                    ann.reason,
                    ann.detail or f"fails together with {ann.element}",
                )
                if ann.element != ("edge", eid)
                else ann,
            )
        for eid in component.edge_ids - state:
            annotations.setdefault(
                ("edge", eid),
                FailureAnnotation(("edge", eid), FailureReason.UNREACHED),
            )
        for vid in component.vertex_ids - vertices:
            annotations.setdefault(
                ("vertex", vid),
                FailureAnnotation(("vertex", vid), FailureReason.UNREACHED),
            )
        return DifferentialGraph(component, state, vertices, annotations, cardinality)

    # -- top level -------------------------------------------------------------

    def run(self) -> McsResult:
        start = time.perf_counter()
        per_component: List[List[DifferentialGraph]] = []
        for vertices in self.query.weakly_connected_components():
            per_component.append(self.run_component(vertices))
        best_parts = [options[0] for options in per_component]
        merged = merge_components(best_parts, self.query)
        alternatives: List[DifferentialGraph] = [
            option for options in per_component for option in options[1:]
        ]
        alternatives = rank_explanations(alternatives, self.preferences)
        rank_explanations([merged], self.preferences)
        self.stats.elapsed = time.perf_counter() - start
        return McsResult(merged, best_parts, alternatives, self.stats)


def discover_mcs(
    graph: PropertyGraph,
    query: GraphQuery,
    strategy: str = "frontier",
    edge_order: Optional[Sequence[int]] = None,
    preferences: Optional[UserPreferences] = None,
    annotate: bool = True,
    max_evaluations: Optional[int] = None,
    matcher: Optional[PatternMatcher] = None,
) -> McsResult:
    """DISCOVERMCS (Sec. 4.2.1): explain a why-empty query.

    Success criterion: the subquery delivers at least one result
    (existence probe with ``limit=1`` -- lazy, bounded evaluation).
    Returns the maximum common connected subgraph per query component and
    the differential graphs describing the failed parts.
    """
    m = matcher if matcher is not None else PatternMatcher(graph)

    def success(subquery: GraphQuery) -> Tuple[bool, int]:
        card = m.count(subquery, limit=1)
        return card > 0, card

    search = SubgraphLatticeSearch(
        graph,
        query,
        success,
        strategy=strategy,
        edge_order=edge_order,
        preferences=preferences,
        annotate=annotate,
        cardinality_mode=False,
        max_evaluations=max_evaluations,
    )
    return search.run()
