"""Differential graphs -- the subgraph-based explanation (Sec. 4.1.2, 4.2.3).

A subgraph-based explanation answers *which part of the query* is
responsible for the unexpected result.  It consists of

* the *maximum common (connected) subgraph* (MCS): the largest part of the
  query graph that still satisfies the cardinality criterion when
  evaluated on its own, and
* the *differential graph*: the remaining query part, annotated with the
  reason each element failed (predicate, type, topology, or cardinality).

The failure reasons are discovered lazily (cf. Sec. 2.1: lazy provenance
is preferred for debugging): when an extension fails, the engine re-tests
it with predicates/types stripped to pin down which constraint class
eliminated all candidate matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Tuple

from repro.core.query import GraphQuery

ElementRef = Tuple[str, int]


class FailureReason(Enum):
    """Why a query element could not join the common subgraph."""

    #: the element's own predicate intervals eliminated every candidate
    PREDICATE = "predicate"
    #: the edge's type set eliminated every candidate
    TYPE = "type"
    #: no data edge connects the already-matched part this way at all
    TOPOLOGY = "topology"
    #: the element joins fine but pushes the cardinality past the bound
    CARDINALITY = "cardinality"
    #: not reached by the traversal (disconnected remainder after failures)
    UNREACHED = "unreached"


@dataclass(frozen=True)
class FailureAnnotation:
    """The diagnosis attached to one differential element."""

    element: ElementRef
    reason: FailureReason
    detail: str = ""

    def __str__(self) -> str:
        kind, ident = self.element
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{kind} {ident}: {self.reason.value}{suffix}"


@dataclass
class DifferentialGraph:
    """MCS + failed remainder of one query (component).

    ``mcs_edges``/``mcs_vertices`` identify the succeeding subquery;
    everything else in ``query`` belongs to the differential.  The
    explanation's *rank* (Sec. 4.4.3) is filled in by the preference model.
    """

    query: GraphQuery
    mcs_edges: FrozenSet[int]
    mcs_vertices: FrozenSet[int]
    annotations: Dict[ElementRef, FailureAnnotation] = field(default_factory=dict)
    #: cardinality of the MCS subquery (bounded probe; -1 = unknown)
    mcs_cardinality: int = -1
    rank: float = 0.0

    @property
    def missing_edges(self) -> FrozenSet[int]:
        return self.query.edge_ids - self.mcs_edges

    @property
    def missing_vertices(self) -> FrozenSet[int]:
        return self.query.vertex_ids - self.mcs_vertices

    @property
    def coverage(self) -> float:
        """Fraction of query elements inside the MCS (1.0 = no failure)."""
        total = len(self.query)
        if total == 0:
            return 1.0
        covered = len(self.mcs_edges) + len(self.mcs_vertices)
        return covered / total

    def mcs_query(self) -> GraphQuery:
        """The succeeding subquery (identifiers preserved)."""
        return self.query.subquery(self.mcs_vertices, self.mcs_edges)

    def differential_query(self) -> GraphQuery:
        """The failed query part as its own pattern.

        Contains the missing vertices plus the missing edges' endpoints
        (an edge cannot exist without its endpoints), mirroring the
        thesis' differential subgraphs.
        """
        vertices = set(self.missing_vertices)
        for eid in self.missing_edges:
            edge = self.query.edge(eid)
            vertices.add(edge.source)
            vertices.add(edge.target)
        return self.query.subquery(vertices, self.missing_edges)

    def describe(self) -> str:
        """Multi-line human-readable explanation (used by examples)."""
        lines = [
            f"common subgraph: {sorted(self.mcs_vertices)} vertices, "
            f"{sorted(self.mcs_edges)} edges "
            f"(coverage {self.coverage:.0%}, cardinality {self.mcs_cardinality})"
        ]
        if not self.missing_edges and not self.missing_vertices:
            lines.append("no failing part: the full query satisfies the bound")
        for ref in sorted(self.annotations):
            lines.append(f"failed {self.annotations[ref]}")
        unannotated = {
            ("edge", eid) for eid in self.missing_edges
        } | {("vertex", vid) for vid in self.missing_vertices}
        for ref in sorted(unannotated - set(self.annotations)):
            lines.append(f"failed {ref[0]} {ref[1]}: unreached")
        return "\n".join(lines)


def merge_components(parts: List[DifferentialGraph], query: GraphQuery) -> DifferentialGraph:
    """Combine per-component differentials into one whole-query view.

    Per Sec. 4.3.1 the components are processed separately; the combined
    explanation unions their common subgraphs and annotations.  The merged
    MCS cardinality is the product of the component cardinalities
    (component matches combine freely), computed only when every part is
    known.
    """
    mcs_edges: FrozenSet[int] = frozenset()
    mcs_vertices: FrozenSet[int] = frozenset()
    annotations: Dict[ElementRef, FailureAnnotation] = {}
    cardinality = 1
    known = True
    for part in parts:
        mcs_edges |= part.mcs_edges
        mcs_vertices |= part.mcs_vertices
        annotations.update(part.annotations)
        if part.mcs_cardinality < 0:
            known = False
        else:
            cardinality *= part.mcs_cardinality
    return DifferentialGraph(
        query=query,
        mcs_edges=mcs_edges,
        mcs_vertices=mcs_vertices,
        annotations=annotations,
        mcs_cardinality=cardinality if known else -1,
    )
