"""User integration for subgraph-based explanations (Sec. 4.4).

The thesis integrates the user *non-intrusively*: instead of asking for
decisions at every step, the engine keeps a relevance weight in [0, 1] per
query element (Sec. 4.4.1), derives the most relevant traversal path from
the weights (Sec. 4.4.2), and ranks the produced explanations by how much
user-relevant query substance they preserve (Sec. 4.4.3).  Ratings
collected during a session adapt the weights online.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.explain.differential import DifferentialGraph
from repro.matching.candidates import estimate_edge_candidates

ElementRef = Tuple[str, int]

#: Relevance assigned to elements the user never rated.
DEFAULT_RELEVANCE = 0.5


@dataclass
class UserPreferences:
    """Per-element relevance weights with online adaptation.

    ``rate`` moves a weight towards the rating with learning rate
    ``adaptation``; repeated consistent feedback converges the weight,
    while a single outlier only nudges it (robust online averaging).
    """

    weights: Dict[ElementRef, float] = field(default_factory=dict)
    adaptation: float = 0.5

    def relevance(self, element: ElementRef) -> float:
        return self.weights.get(element, DEFAULT_RELEVANCE)

    def edge_relevance(self, eid: int) -> float:
        return self.relevance(("edge", eid))

    def vertex_relevance(self, vid: int) -> float:
        return self.relevance(("vertex", vid))

    def rate(self, element: ElementRef, rating: float) -> None:
        """Record a rating in [0, 1] for one query element."""
        if not 0.0 <= rating <= 1.0:
            raise ValueError(f"rating must be in [0, 1], got {rating}")
        current = self.relevance(element)
        self.weights[element] = current + self.adaptation * (rating - current)

    def mark_important(self, *elements: ElementRef) -> None:
        """Convenience: pin elements to maximal relevance."""
        for element in elements:
            self.weights[element] = 1.0

    def mark_irrelevant(self, *elements: ElementRef) -> None:
        """Convenience: pin elements to minimal relevance."""
        for element in elements:
            self.weights[element] = 0.0

    def edge_path_relevance(self, query: GraphQuery, eid: int) -> float:
        """Relevance of traversing an edge: edge plus endpoint weights."""
        edge = query.edge(eid)
        return (
            self.edge_relevance(eid)
            + self.vertex_relevance(edge.source)
            + self.vertex_relevance(edge.target)
        ) / 3.0


def preferred_traversal_order(
    query: GraphQuery,
    preferences: Optional[UserPreferences] = None,
    graph: Optional[PropertyGraph] = None,
) -> List[int]:
    """The user-centric traversal path of Sec. 4.4.2.

    Greedy connected order over the query edges: start at the edge with
    the highest path relevance (ties broken by selectivity when a data
    graph is supplied, then by identifier) and always continue with the
    most relevant frontier edge.  Disconnected queries continue with the
    best remaining edge of the next component.
    """
    prefs = preferences or UserPreferences()

    def selectivity(eid: int) -> int:
        if graph is None:
            return 0
        return estimate_edge_candidates(graph, query.edge(eid))

    remaining = set(query.edge_ids)
    order: List[int] = []
    covered: set = set()
    while remaining:
        frontier = [
            eid
            for eid in remaining
            if query.edge(eid).source in covered or query.edge(eid).target in covered
        ]
        pool = frontier if frontier else sorted(remaining)
        best = max(
            pool,
            key=lambda eid: (
                prefs.edge_path_relevance(query, eid),
                -selectivity(eid),
                -eid,
            ),
        )
        order.append(best)
        remaining.discard(best)
        covered.add(query.edge(best).source)
        covered.add(query.edge(best).target)
    return order


def explanation_rank(
    differential: DifferentialGraph,
    preferences: Optional[UserPreferences] = None,
) -> float:
    """Rank of an explanation (Sec. 4.4.3).

    The rank combines the structural coverage of the common subgraph with
    the preserved user relevance: explanations that keep the elements the
    user cares about rank higher than equally-sized ones that sacrifice
    them.  Both terms live in [0, 1]; the rank is their mean.
    """
    prefs = preferences or UserPreferences()
    query = differential.query
    total_relevance = 0.0
    kept_relevance = 0.0
    for vid in query.vertex_ids:
        w = prefs.vertex_relevance(vid)
        total_relevance += w
        if vid in differential.mcs_vertices:
            kept_relevance += w
    for eid in query.edge_ids:
        w = prefs.edge_relevance(eid)
        total_relevance += w
        if eid in differential.mcs_edges:
            kept_relevance += w
    relevance_term = kept_relevance / total_relevance if total_relevance else 1.0
    return (differential.coverage + relevance_term) / 2.0


def rank_explanations(
    differentials: Iterable[DifferentialGraph],
    preferences: Optional[UserPreferences] = None,
) -> List[DifferentialGraph]:
    """Assign ranks and sort explanations best-first (stable)."""
    ranked = list(differentials)
    for diff in ranked:
        diff.rank = explanation_rank(diff, preferences)
    ranked.sort(key=lambda d: -d.rank)
    return ranked
