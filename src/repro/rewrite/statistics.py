"""Query-dependent statistics and cardinality estimation (Sec. 5.2).

The coarse-grained rewriter must predict which relaxation is most likely
to produce a non-empty result *without* executing every candidate.  The
thesis computes query-dependent statistics on three granularities:

* **vertices / edges** (Sec. 5.2.2): how many data elements satisfy one
  query element's own constraints, exactly, via the graph indexes;
* **path(1)** (Sec. 5.2.3): how many data edges satisfy a query edge
  *together with* both endpoint constraints -- the cardinality of the
  one-hop pattern;
* **path(n)**: estimated by chaining path(1) statistics under the classic
  attribute-independence assumption: joining two sub-paths at a shared
  vertex divides the product of their cardinalities by the number of data
  vertices admissible at the join vertex.

Exact per-element statistics are cached by predicate signature, so
repeated candidate scoring touches the graph only once per distinct
constraint.  Vertex candidate sets come from the per-graph shared
:class:`~repro.matching.evalcache.EvaluationCache`, so the statistics
provider and the matcher never derive the same candidate set twice.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.core.graph import PropertyGraph
from repro.core.query import Direction, GraphQuery, QueryEdge, QueryVertex
from repro.matching.candidates import attributes_match
from repro.matching.evalcache import EvaluationCache, shared_evaluation_cache


class GraphStatistics:
    """Statistics provider bound to one data graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        evalcache: Optional[EvaluationCache] = None,
    ) -> None:
        self.graph = graph
        self.evalcache = (
            evalcache if evalcache is not None else shared_evaluation_cache(graph)
        )
        self._version = graph.version
        self._edge_cache: Dict[Hashable, int] = {}
        self._path1_cache: Dict[Hashable, int] = {}

    def _validate(self) -> None:
        """Drop stale statistics when the graph has been mutated."""
        if self.graph.version != self._version:
            self._edge_cache.clear()
            self._path1_cache.clear()
            self._version = self.graph.version

    # -- vertex / edge statistics (Sec. 5.2.2) -------------------------------

    def vertex_cardinality(self, qvertex: QueryVertex) -> int:
        """Exact number of data vertices satisfying the vertex predicates."""
        candidates = self.evalcache.vertex_candidates(qvertex)
        return self.graph.num_vertices if candidates is None else len(candidates)

    def edge_cardinality(self, qedge: QueryEdge) -> int:
        """Exact number of data edges satisfying type set and predicates.

        Endpoint constraints are ignored here; they belong to path(1).
        """
        self._validate()
        key = (
            tuple(sorted(qedge.types)) if qedge.types is not None else None,
            tuple(sorted((a, p.signature()) for a, p in qedge.predicates.items())),
        )
        cached = self._edge_cache.get(key)
        if cached is not None:
            return cached
        if not qedge.predicates:
            # pure type constraint: O(1) per-type counts, no edge scan
            if qedge.types is None:
                count = self.graph.num_edges
            else:
                count = sum(self.graph.num_edges_of_type(t) for t in qedge.types)
        else:
            count = 0
            for record in self._edges_of_types(qedge.types):
                if attributes_match(record.attributes, qedge.predicates):
                    count += 1
        self._edge_cache[key] = count
        return count

    # -- path statistics (Sec. 5.2.3) -------------------------------------------

    def path1_cardinality(self, query: GraphQuery, eid: int) -> int:
        """Exact cardinality of the one-hop pattern around query edge ``eid``.

        Counts data edges satisfying the edge constraints whose endpoints
        satisfy the source/target vertex predicates in at least one
        admitted orientation.
        """
        self._validate()
        qedge = query.edge(eid)
        source = query.vertex(qedge.source)
        target = query.vertex(qedge.target)
        key = (
            tuple(sorted(qedge.types)) if qedge.types is not None else None,
            tuple(sorted((a, p.signature()) for a, p in qedge.predicates.items())),
            source.signature()[1],
            target.signature()[1],
            tuple(sorted(d.value for d in qedge.directions)),
        )
        cached = self._path1_cache.get(key)
        if cached is not None:
            return cached

        forward = Direction.FORWARD in qedge.directions
        backward = Direction.BACKWARD in qedge.directions
        count = 0
        for record in self._edges_of_types(qedge.types):
            if not attributes_match(record.attributes, qedge.predicates):
                continue
            src_attrs = self.graph.vertex_attributes(record.source)
            tgt_attrs = self.graph.vertex_attributes(record.target)
            hit = False
            if forward:
                hit = attributes_match(src_attrs, source.predicates) and (
                    attributes_match(tgt_attrs, target.predicates)
                )
            if not hit and backward:
                hit = attributes_match(src_attrs, target.predicates) and (
                    attributes_match(tgt_attrs, source.predicates)
                )
            if hit:
                count += 1
        self._path1_cache[key] = count
        return count

    def average_path1_cardinality(self, query: GraphQuery) -> float:
        """Mean path(1) cardinality over all query edges (Sec. 5.5.3)."""
        eids = sorted(query.edge_ids)
        if not eids:
            vertices = list(query.vertices())
            if not vertices:
                return 0.0
            return sum(self.vertex_cardinality(v) for v in vertices) / len(vertices)
        return sum(self.path1_cardinality(query, eid) for eid in eids) / len(eids)

    def estimate_path_cardinality(self, query: GraphQuery, eids: List[int]) -> float:
        """Path(n) estimate for a chain of query edges (Sec. 5.2.3).

        ``est(e1..en) = path1(e1) * prod_i path1(ei) / |V(join_i)|`` where
        ``join_i`` is the query vertex shared between consecutive edges.
        """
        if not eids:
            return 0.0
        estimate = float(self.path1_cardinality(query, eids[0]))
        for prev_eid, eid in zip(eids, eids[1:]):
            shared = self._shared_vertex(query, prev_eid, eid)
            join_card = max(1, self.vertex_cardinality(query.vertex(shared)))
            estimate *= self.path1_cardinality(query, eid) / join_card
        return estimate

    def estimate_query_cardinality(self, query: GraphQuery) -> float:
        """Independence-based cardinality estimate of a whole query.

        Uses a spanning forest of the query: multiply path(1)
        cardinalities of tree edges, divide by the vertex cardinality of
        every join vertex occurrence, then apply the selectivity of each
        remaining non-tree edge (``path1 / (|Vs| * |Vt|)``).  Isolated
        vertices multiply their own vertex cardinality.
        """
        if query.num_vertices == 0:
            return 0.0
        estimate = 1.0
        visited: set = set()
        for component in query.weakly_connected_components():
            estimate *= self._estimate_component(query, component)
            visited |= component
        return estimate

    def _estimate_component(self, query: GraphQuery, vertices) -> float:
        in_tree: set = set()
        tree_edges: List[int] = []
        non_tree: List[int] = []
        edges = sorted(
            (eid for eid in query.edge_ids
             if query.edge(eid).source in vertices),
            key=lambda eid: -self.path1_cardinality(query, eid),
        )
        # Greedy spanning tree preferring high-cardinality edges first so
        # the most significant joins anchor the estimate.
        root = min(vertices)
        in_tree.add(root)
        remaining = [eid for eid in edges]
        progress = True
        while progress:
            progress = False
            for eid in list(remaining):
                edge = query.edge(eid)
                s_in, t_in = edge.source in in_tree, edge.target in in_tree
                if s_in and t_in:
                    non_tree.append(eid)
                    remaining.remove(eid)
                elif s_in or t_in:
                    tree_edges.append(eid)
                    in_tree.add(edge.source)
                    in_tree.add(edge.target)
                    remaining.remove(eid)
                    progress = True
        non_tree.extend(remaining)

        if not tree_edges:
            vertex = query.vertex(next(iter(vertices)))
            return float(self.vertex_cardinality(vertex))

        estimate = 1.0
        joined: set = set()
        for eid in tree_edges:
            edge = query.edge(eid)
            path1 = self.path1_cardinality(query, eid)
            if not joined:
                estimate = float(path1)
                joined |= {edge.source, edge.target}
                continue
            shared = edge.source if edge.source in joined else edge.target
            join_card = max(1, self.vertex_cardinality(query.vertex(shared)))
            estimate *= path1 / join_card
            joined |= {edge.source, edge.target}
        for eid in non_tree:
            edge = query.edge(eid)
            path1 = self.path1_cardinality(query, eid)
            denom = max(
                1,
                self.vertex_cardinality(query.vertex(edge.source))
                * self.vertex_cardinality(query.vertex(edge.target)),
            )
            estimate *= path1 / denom
        # Isolated vertices of this component (no edges at all).
        for vid in vertices - in_tree:
            estimate *= self.vertex_cardinality(query.vertex(vid))
        return estimate

    # -- helpers -----------------------------------------------------------------

    def _edges_of_types(self, types) -> Iterable:
        if types is None:
            yield from self.graph.edges()
            return
        for t in types:
            for eid in self.graph.edges_of_type(t):
                yield self.graph.edge(eid)

    @staticmethod
    def _shared_vertex(query: GraphQuery, eid_a: int, eid_b: int) -> int:
        a, b = query.edge(eid_a), query.edge(eid_b)
        shared = set(a.endpoints()) & set(b.endpoints())
        if not shared:
            raise ValueError(f"edges {eid_a} and {eid_b} share no vertex")
        return min(shared)

    @property
    def cache_sizes(self) -> Dict[str, int]:
        """Sizes of the statistic caches (Appendix B.2 reporting).

        ``vertex`` reports the shared evaluation cache (candidate sets by
        predicate signature), which this provider populates and reads.
        """
        return {
            "vertex": len(self.evalcache),
            "edge": len(self._edge_cache),
            "path1": len(self._path1_cache),
        }
