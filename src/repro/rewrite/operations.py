"""Query modification operations (Table 3.1 and Fig. 3.2).

Every rewriting engine in the library speaks the same vocabulary of
modification operations.  An operation is an immutable description of one
change; :meth:`Modification.apply` returns a *new* query, never mutating
its input, so search engines can safely share parent queries between
branches.

Two classes of operations (Sec. 3.2.1):

* **relaxations** remove or weaken constraints (more results expected):
  dropping predicates/edges/vertices/types, adding admissible predicate
  values, widening numeric intervals, admitting both edge directions;
* **concretisations** add or strengthen constraints (fewer results
  expected): removing admissible values, narrowing intervals, adding new
  predicates, restricting type sets, fixing a direction, adding edges.

The *coarse-grained* engine of Chapter 5 uses only whole-constraint
relaxations; the *fine-grained* engine of Chapter 6 additionally uses the
value-level operations.  :class:`AttributeDomain` supplies data-driven
value proposals for the relaxing/concretising generators.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.errors import PredicateError, RewritingError
from repro.core.graph import PropertyGraph
from repro.core.predicates import Interval, Predicate, ValueSet
from repro.core.query import BOTH_DIRECTIONS, Direction, GraphQuery

#: Element reference: ``("vertex", vid)`` or ``("edge", eid)``.
ElementRef = Tuple[str, int]


class Modification(ABC):
    """One atomic change to a graph query."""

    #: ``True`` for relaxations, ``False`` for concretisations.
    is_relaxation: bool = True

    @property
    @abstractmethod
    def target(self) -> ElementRef:
        """The query element this operation touches (for preferences)."""

    @abstractmethod
    def apply(self, query: GraphQuery) -> GraphQuery:
        """Return a new query with the change applied.

        Raises :class:`RewritingError` when the operation is no longer
        applicable to ``query`` (e.g. the element was already removed by
        an earlier change on the same search branch).
        """

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable description."""

    @abstractmethod
    def signature(self) -> Hashable:
        """Stable identity used to deduplicate search branches."""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Modification):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


def _element_predicates(query: GraphQuery, ref: ElementRef) -> Dict[str, Predicate]:
    kind, ident = ref
    if kind == "vertex":
        if not query.has_vertex(ident):
            raise RewritingError(f"vertex {ident} no longer in query")
        return query.vertex(ident).predicates
    if kind == "edge":
        if not query.has_edge(ident):
            raise RewritingError(f"edge {ident} no longer in query")
        return query.edge(ident).predicates
    raise RewritingError(f"unknown element kind {kind!r}")


# --------------------------------------------------------------------------
# Coarse-grained relaxations (Ch. 5)
# --------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class DropPredicate(Modification):
    """Relaxation: remove a whole predicate interval (Table 3.1)."""

    element: ElementRef
    attr: str
    is_relaxation = True

    @property
    def target(self) -> ElementRef:
        return self.element

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        preds = _element_predicates(out, self.element)
        if self.attr not in preds:
            raise RewritingError(f"{self.element} has no predicate {self.attr!r}")
        del preds[self.attr]
        return out

    def describe(self) -> str:
        kind, ident = self.element
        return f"drop predicate {self.attr!r} from {kind} {ident}"

    def signature(self) -> Hashable:
        return ("drop-pred", self.element, self.attr)


@dataclass(frozen=True, repr=False)
class DropEdge(Modification):
    """Relaxation: remove a query edge (edge deletion, Table 3.1)."""

    eid: int
    is_relaxation = True

    @property
    def target(self) -> ElementRef:
        return ("edge", self.eid)

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        if not out.has_edge(self.eid):
            raise RewritingError(f"edge {self.eid} no longer in query")
        out.remove_edge(self.eid)
        return out

    def describe(self) -> str:
        return f"drop edge {self.eid}"

    def signature(self) -> Hashable:
        return ("drop-edge", self.eid)


@dataclass(frozen=True, repr=False)
class DropVertex(Modification):
    """Relaxation: remove a vertex together with its incident edges.

    The complex operation "vertex exclusion" of Fig. 3.2.
    """

    vid: int
    is_relaxation = True

    @property
    def target(self) -> ElementRef:
        return ("vertex", self.vid)

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        if not out.has_vertex(self.vid):
            raise RewritingError(f"vertex {self.vid} no longer in query")
        if out.num_vertices <= 1:
            raise RewritingError("refusing to remove the last query vertex")
        out.remove_vertex(self.vid)
        return out

    def describe(self) -> str:
        return f"drop vertex {self.vid} (with incident edges)"

    def signature(self) -> Hashable:
        return ("drop-vertex", self.vid)


@dataclass(frozen=True, repr=False)
class DropTypeConstraint(Modification):
    """Relaxation: remove an edge's type set (type deletion, Table 3.1)."""

    eid: int
    is_relaxation = True

    @property
    def target(self) -> ElementRef:
        return ("edge", self.eid)

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        if not out.has_edge(self.eid):
            raise RewritingError(f"edge {self.eid} no longer in query")
        edge = out.edge(self.eid)
        if edge.types is None:
            raise RewritingError(f"edge {self.eid} has no type constraint")
        edge.types = None
        return out

    def describe(self) -> str:
        return f"drop type constraint of edge {self.eid}"

    def signature(self) -> Hashable:
        return ("drop-types", self.eid)


@dataclass(frozen=True, repr=False)
class RelaxDirection(Modification):
    """Relaxation: admit both orientations (direction insertion)."""

    eid: int
    is_relaxation = True

    @property
    def target(self) -> ElementRef:
        return ("edge", self.eid)

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        if not out.has_edge(self.eid):
            raise RewritingError(f"edge {self.eid} no longer in query")
        edge = out.edge(self.eid)
        if edge.directions == BOTH_DIRECTIONS:
            raise RewritingError(f"edge {self.eid} already matches both directions")
        edge.directions = BOTH_DIRECTIONS
        return out

    def describe(self) -> str:
        return f"relax direction of edge {self.eid} to both"

    def signature(self) -> Hashable:
        return ("relax-dir", self.eid)


# --------------------------------------------------------------------------
# Fine-grained operations (Ch. 6)
# --------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class AddPredicateValue(Modification):
    """Relaxation: admit one more value in a :class:`ValueSet` predicate."""

    element: ElementRef
    attr: str
    value: Any
    is_relaxation = True

    @property
    def target(self) -> ElementRef:
        return self.element

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        preds = _element_predicates(out, self.element)
        pred = preds.get(self.attr)
        if not isinstance(pred, ValueSet):
            raise RewritingError(f"{self.element}.{self.attr} is not a ValueSet")
        if pred.matches(self.value):
            raise RewritingError(f"{self.value!r} already admitted")
        preds[self.attr] = pred.with_value(self.value)
        return out

    def describe(self) -> str:
        kind, ident = self.element
        return f"admit {self.attr}={self.value!r} on {kind} {ident}"

    def signature(self) -> Hashable:
        return ("add-value", self.element, self.attr, repr(self.value))


@dataclass(frozen=True, repr=False)
class RemovePredicateValue(Modification):
    """Concretisation: retract one admissible value from a ValueSet."""

    element: ElementRef
    attr: str
    value: Any
    is_relaxation = False

    @property
    def target(self) -> ElementRef:
        return self.element

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        preds = _element_predicates(out, self.element)
        pred = preds.get(self.attr)
        if not isinstance(pred, ValueSet):
            raise RewritingError(f"{self.element}.{self.attr} is not a ValueSet")
        try:
            preds[self.attr] = pred.without_value(self.value)
        except PredicateError as exc:
            raise RewritingError(str(exc)) from exc
        return out

    def describe(self) -> str:
        kind, ident = self.element
        return f"retract {self.attr}={self.value!r} on {kind} {ident}"

    def signature(self) -> Hashable:
        return ("remove-value", self.element, self.attr, repr(self.value))


@dataclass(frozen=True, repr=False)
class WidenInterval(Modification):
    """Relaxation: move both bounds of an :class:`Interval` outwards."""

    element: ElementRef
    attr: str
    step: float
    is_relaxation = True

    @property
    def target(self) -> ElementRef:
        return self.element

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        preds = _element_predicates(out, self.element)
        pred = preds.get(self.attr)
        if not isinstance(pred, Interval):
            raise RewritingError(f"{self.element}.{self.attr} is not an Interval")
        preds[self.attr] = pred.widen(self.step)
        return out

    def describe(self) -> str:
        kind, ident = self.element
        return f"widen {self.attr} by {self.step} on {kind} {ident}"

    def signature(self) -> Hashable:
        return ("widen", self.element, self.attr, self.step)


@dataclass(frozen=True, repr=False)
class NarrowInterval(Modification):
    """Concretisation: move both bounds of an Interval inwards."""

    element: ElementRef
    attr: str
    step: float
    is_relaxation = False

    @property
    def target(self) -> ElementRef:
        return self.element

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        preds = _element_predicates(out, self.element)
        pred = preds.get(self.attr)
        if not isinstance(pred, Interval):
            raise RewritingError(f"{self.element}.{self.attr} is not an Interval")
        try:
            preds[self.attr] = pred.narrow(self.step)
        except PredicateError as exc:
            raise RewritingError(str(exc)) from exc
        return out

    def describe(self) -> str:
        kind, ident = self.element
        return f"narrow {self.attr} by {self.step} on {kind} {ident}"

    def signature(self) -> Hashable:
        return ("narrow", self.element, self.attr, self.step)


@dataclass(frozen=True, repr=False)
class AddPredicate(Modification):
    """Concretisation: constrain a previously unconstrained attribute."""

    element: ElementRef
    attr: str
    predicate: Predicate
    is_relaxation = False

    @property
    def target(self) -> ElementRef:
        return self.element

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        preds = _element_predicates(out, self.element)
        if self.attr in preds:
            raise RewritingError(f"{self.element}.{self.attr} already constrained")
        preds[self.attr] = self.predicate
        return out

    def describe(self) -> str:
        kind, ident = self.element
        return f"constrain {self.attr} to {self.predicate!r} on {kind} {ident}"

    def signature(self) -> Hashable:
        return ("add-pred", self.element, self.attr, self.predicate.signature())


@dataclass(frozen=True, repr=False)
class RestrictDirection(Modification):
    """Concretisation: fix an edge that matches both orientations."""

    eid: int
    direction: Direction
    is_relaxation = False

    @property
    def target(self) -> ElementRef:
        return ("edge", self.eid)

    def apply(self, query: GraphQuery) -> GraphQuery:
        out = query.copy()
        if not out.has_edge(self.eid):
            raise RewritingError(f"edge {self.eid} no longer in query")
        edge = out.edge(self.eid)
        if edge.directions != BOTH_DIRECTIONS:
            raise RewritingError(f"edge {self.eid} is already directed")
        edge.directions = frozenset({self.direction})
        return out

    def describe(self) -> str:
        return f"restrict edge {self.eid} to {self.direction.value}"

    def signature(self) -> Hashable:
        return ("restrict-dir", self.eid, self.direction.value)


# --------------------------------------------------------------------------
# Data-driven value proposals
# --------------------------------------------------------------------------


class AttributeDomain:
    """Value statistics of the data graph, for proposing modifications.

    Relaxing a predicate needs a *new admissible value* that actually
    occurs in the data; concretising needs plausible constraint values.
    The domain aggregates attribute histograms over vertices and edges
    lazily and caches them.
    """

    def __init__(self, graph: PropertyGraph, max_proposals: int = 3) -> None:
        self.graph = graph
        self.max_proposals = max_proposals
        self._vertex_counters: Dict[str, Counter] = {}
        self._edge_counters: Dict[str, Counter] = {}
        self._attr_names: Optional[List[str]] = None

    def common_vertex_attrs(self, k: int = 4) -> List[str]:
        """Most frequent vertex attribute *names* (for AddPredicate ops).

        Used as the default pool of constrainable attributes when a
        why-so-many query offers no existing predicate to tighten.
        """
        if self._attr_names is None:
            counter: Counter = Counter()
            for vid in self.graph.vertices():
                counter.update(self.graph.vertex_attributes(vid).keys())
            self._attr_names = [name for name, _ in counter.most_common()]
        return self._attr_names[:k]

    def vertex_values(self, attr: str) -> Counter:
        """Histogram of a vertex attribute over the whole graph."""
        counter = self._vertex_counters.get(attr)
        if counter is None:
            counter = Counter(self.graph.vertex_value_counts(attr))
            self._vertex_counters[attr] = counter
        return counter

    def edge_values(self, attr: str) -> Counter:
        """Histogram of an edge attribute over the whole graph."""
        counter = self._edge_counters.get(attr)
        if counter is None:
            counter = Counter()
            for record in self.graph.edges():
                if attr in record.attributes:
                    counter[record.attributes[attr]] += 1
            self._edge_counters[attr] = counter
        return counter

    def values_for(self, ref: ElementRef, attr: str) -> Counter:
        kind, _ = ref
        return self.vertex_values(attr) if kind == "vertex" else self.edge_values(attr)

    def propose_additional_values(
        self, ref: ElementRef, attr: str, pred: ValueSet
    ) -> List[Any]:
        """Most frequent data values not yet admitted by ``pred``."""
        counter = self.values_for(ref, attr)
        proposals = [v for v, _ in counter.most_common() if not pred.matches(v)]
        return proposals[: self.max_proposals]

    def propose_constraint_values(self, ref: ElementRef, attr: str) -> List[Any]:
        """Most frequent data values to constrain an attribute to."""
        counter = self.values_for(ref, attr)
        return [v for v, _ in counter.most_common(self.max_proposals)]

    def numeric_step(self, ref: ElementRef, attr: str) -> float:
        """Typical bound step for interval widening (median gap, >= 1)."""
        counter = self.values_for(ref, attr)
        values = sorted(v for v in counter if isinstance(v, (int, float)))
        if len(values) < 2:
            return 1.0
        gaps = [b - a for a, b in zip(values, values[1:]) if b > a]
        if not gaps:
            return 1.0
        gaps.sort()
        return float(max(1.0, gaps[len(gaps) // 2]))


# --------------------------------------------------------------------------
# Applicable-operation generators
# --------------------------------------------------------------------------


def coarse_relaxations(query: GraphQuery) -> List[Modification]:
    """All whole-constraint relaxations applicable to ``query`` (Ch. 5).

    Ordering is deterministic: predicates by element id/attribute, then
    type constraints, directions, edges, vertices.
    """
    ops: List[Modification] = []
    for v in sorted(query.vertices(), key=lambda v: v.vid):
        for attr in sorted(v.predicates):
            ops.append(DropPredicate(("vertex", v.vid), attr))
    for e in sorted(query.edges(), key=lambda e: e.eid):
        for attr in sorted(e.predicates):
            ops.append(DropPredicate(("edge", e.eid), attr))
        if e.types is not None:
            ops.append(DropTypeConstraint(e.eid))
        if e.directions != BOTH_DIRECTIONS:
            ops.append(RelaxDirection(e.eid))
    for e in sorted(query.edges(), key=lambda e: e.eid):
        ops.append(DropEdge(e.eid))
    if query.num_vertices > 1:
        for v in sorted(query.vertices(), key=lambda v: v.vid):
            ops.append(DropVertex(v.vid))
    return ops


def fine_relaxations(
    query: GraphQuery,
    domain: AttributeDomain,
    include_topology: bool = False,
) -> List[Modification]:
    """Value-level relaxations (Ch. 6), optionally with topology changes."""
    ops: List[Modification] = []
    step_cache: Dict[Tuple[ElementRef, str], float] = {}

    def element_ops(ref: ElementRef, predicates: Dict[str, Predicate]) -> None:
        for attr in sorted(predicates):
            pred = predicates[attr]
            if isinstance(pred, ValueSet):
                for value in domain.propose_additional_values(ref, attr, pred):
                    ops.append(AddPredicateValue(ref, attr, value))
            elif isinstance(pred, Interval):
                step = step_cache.setdefault(
                    (ref, attr), domain.numeric_step(ref, attr)
                )
                # Two granularities: a one-step widening may reach no new
                # data value and be discarded as non-contributing
                # (Sec. 6.3.2), so a coarser jump keeps the branch alive.
                ops.append(WidenInterval(ref, attr, step))
                ops.append(WidenInterval(ref, attr, step * 4))

    for v in sorted(query.vertices(), key=lambda v: v.vid):
        element_ops(("vertex", v.vid), v.predicates)
    for e in sorted(query.edges(), key=lambda e: e.eid):
        element_ops(("edge", e.eid), e.predicates)
        if e.directions != BOTH_DIRECTIONS:
            ops.append(RelaxDirection(e.eid))
    if include_topology:
        for e in sorted(query.edges(), key=lambda e: e.eid):
            ops.append(DropEdge(e.eid))
        for v in sorted(query.vertices(), key=lambda v: v.vid):
            if query.num_vertices > 1:
                ops.append(DropVertex(v.vid))
    return ops


def fine_concretisations(
    query: GraphQuery,
    domain: AttributeDomain,
    constrainable_attrs: Optional[Iterable[str]] = None,
) -> List[Modification]:
    """Value-level concretisations (Ch. 6, why-so-many direction).

    ``constrainable_attrs`` limits which new attributes may be constrained
    via :class:`AddPredicate`; by default, none are added and only existing
    predicates are tightened (retracting values, narrowing intervals,
    fixing directions).
    """
    ops: List[Modification] = []

    def element_ops(ref: ElementRef, predicates: Dict[str, Predicate]) -> None:
        for attr in sorted(predicates):
            pred = predicates[attr]
            if isinstance(pred, ValueSet) and len(pred.values) > 1:
                for value in sorted(pred.values, key=repr):
                    ops.append(RemovePredicateValue(ref, attr, value))
            elif isinstance(pred, Interval):
                step = domain.numeric_step(ref, attr)
                low = pred.low if math.isfinite(pred.low) else None
                high = pred.high if math.isfinite(pred.high) else None
                if low is not None and high is not None:
                    if high - low > step:
                        ops.append(NarrowInterval(ref, attr, step))
                    if high - low > 4 * step:
                        ops.append(NarrowInterval(ref, attr, step * 2))
        if constrainable_attrs:
            for attr in constrainable_attrs:
                if attr in predicates:
                    continue
                for value in domain.propose_constraint_values(ref, attr):
                    ops.append(AddPredicate(ref, attr, ValueSet([value])))

    for v in sorted(query.vertices(), key=lambda v: v.vid):
        element_ops(("vertex", v.vid), v.predicates)
    for e in sorted(query.edges(), key=lambda e: e.eid):
        element_ops(("edge", e.eid), e.predicates)
        if e.directions == BOTH_DIRECTIONS:
            ops.append(RestrictDirection(e.eid, Direction.FORWARD))
            ops.append(RestrictDirection(e.eid, Direction.BACKWARD))
    return ops
