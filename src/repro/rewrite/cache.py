"""Query-result caching for the rewriting engines (Contribution 4, App. B.2).

Rewriting engines evaluate many overlapping query variants; different
search branches frequently reach the *same* relaxed query through
different modification sequences.  The cache memoises bounded
cardinalities by canonical query signature so each distinct variant is
executed at most once, and exports the hit/size counters reported in the
Appendix B.2 resource-consumption experiment.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.delta import (
    QueryTouchProfile,
    delta_touch,
    query_touch_profile,
    touch_affects_query,
)
from repro.core.query import GraphQuery
from repro.core.serialize import query_from_wire, query_to_wire
from repro.matching.evalcache import CacheStats, EvaluationCache
from repro.matching.matcher import PatternMatcher

__all__ = ["CacheStats", "QueryResultCache"]


class QueryResultCache:
    """Memoises bounded match counts keyed by canonical query signature.

    A cached count is reusable only when it was computed with at least
    the requested evaluation limit, so the cache stores the limit next to
    the count (``None`` = unbounded, always reusable).

    The wrapped matcher's plan and candidate caches are shared per graph,
    so even a cache *miss* here reuses the evaluation-layer derivations of
    every other engine bound to the same graph.

    ``max_entries`` bounds the cache for long-lived owners (the execution
    contexts a :class:`~repro.service.WhyQueryService` keeps warm):
    entries are promoted on every hit and the least-recently-*used* entry
    is evicted when the bound is hit, so a warm service context keeps its
    hot queries no matter how long ago they were first evaluated.
    ``None`` keeps the historical unbounded behaviour for short-lived
    engines.

    Thread-safety: concurrent service requests share one cache, and LRU
    promotion/eviction are multi-step dict mutations, so all bookkeeping
    runs under a lock; the matcher execution itself happens outside it
    (two threads missing the same key may both execute -- benign, the
    second result simply overwrites the first).
    """

    def __init__(
        self, matcher: PatternMatcher, max_entries: Optional[int] = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.matcher = matcher
        self.max_entries = max_entries
        self._version = matcher.graph.version
        self._entries: Dict[Hashable, tuple] = {}
        #: key -> touch profile of the cached query, for delta scoping
        self._profiles: Dict[Hashable, QueryTouchProfile] = {}
        #: key -> compact wire form of the cached query; the signature a
        #: key is made of is not invertible, so externalization
        #: (:mod:`repro.persist`) keeps the query itself next to the
        #: entry in its immutable wire form
        self._wires: Dict[Hashable, Tuple] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @property
    def evalcache(self) -> EvaluationCache:
        """The evaluation cache shared with the wrapped matcher."""
        return self.matcher.evalcache

    def _validate_locked(self) -> None:
        """Catch up with a mutated data graph, delta-scoped.

        While the graph's delta log still holds the records since this
        cache's snapshot, only entries whose query depends on a touched
        attribute or edge type are dropped; a count over untouched
        types/attributes cannot have changed.  No log (or an overrun
        ring) falls back to the wholesale clear.
        """
        graph = self.matcher.graph
        if graph.version == self._version:
            return
        deltas_since = getattr(graph, "deltas_since", None)
        deltas = deltas_since(self._version) if deltas_since is not None else None
        if deltas is None:
            self._entries.clear()
            self._profiles.clear()
            self._wires.clear()
        else:
            touch = delta_touch(deltas)
            stale = [
                key
                for key, profile in self._profiles.items()
                if touch_affects_query(touch, profile)
            ]
            for key in stale:
                del self._entries[key]
                del self._profiles[key]
                self._wires.pop(key, None)
        self._version = graph.version
        self.stats.size = len(self._entries)

    def count(self, query: GraphQuery, limit: Optional[int] = None) -> int:
        """Cardinality of ``query`` (bounded by ``limit``), cached."""
        key = query.signature()
        with self._lock:
            self._validate_locked()
            entry = self._entries.get(key)
            if entry is not None:
                cached_count, cached_limit = entry
                reusable = (
                    cached_limit is None
                    or (limit is not None and cached_limit >= limit)
                    # a count strictly below its own limit is exact
                    or cached_count < cached_limit
                )
                if reusable:
                    self.stats.hits += 1
                    if self.max_entries is not None:
                        # LRU promotion: move the hit to the back of the
                        # (insertion-ordered) dict so eviction drops the
                        # least-recently-used entry, not the oldest-inserted
                        self._entries[key] = self._entries.pop(key)
                    if limit is not None and cached_count > limit:
                        return limit
                    return cached_count
            self.stats.misses += 1
        count = self.matcher.count(query, limit=limit)
        with self._lock:
            # pop-then-set so a re-computed entry (stale bounded count)
            # also lands in the most-recently-used position
            self._entries.pop(key, None)
            self._entries[key] = (count, limit)
            self._profiles[key] = query_touch_profile(query)
            self._wires[key] = query_to_wire(query)
            if self.max_entries is not None:
                # dicts iterate in insertion/promotion order: evict LRU-first
                while len(self._entries) > self.max_entries:
                    evicted = next(iter(self._entries))
                    del self._entries[evicted]
                    self._profiles.pop(evicted, None)
                    self._wires.pop(evicted, None)
            self.stats.size = len(self._entries)
        return count

    def invalidate(self) -> None:
        """Drop all entries (used when the data graph changes)."""
        with self._lock:
            self._entries.clear()
            self._profiles.clear()
            self._wires.clear()
            self.stats.size = 0

    # -- externalization seam (warm-restart persistence) ----------------------

    def export_entries(self) -> List[Tuple[GraphQuery, int, Optional[int]]]:
        """Snapshot every live entry as ``(query, count, limit)`` triples.

        The cache is validated against the graph's current version first
        (delta-scoped, exactly as a lookup would), so the export is
        always consistent with ``matcher.graph.version`` at return time
        -- the caller stamps its snapshot with that version.  Entries
        are emitted in LRU order (least recently used first) so a
        bounded restore keeps the hottest entries.
        """
        with self._lock:
            self._validate_locked()
            out: List[Tuple[GraphQuery, int, Optional[int]]] = []
            for key, (count, limit) in self._entries.items():
                wire = self._wires.get(key)
                if wire is None:
                    continue  # pre-seam entry (no retained query): skip
                out.append((query_from_wire(wire), count, limit))
            return out

    def restore_entries(
        self, entries: Iterable[Tuple[GraphQuery, int, Optional[int]]]
    ) -> int:
        """Insert externally persisted entries; returns how many landed.

        The caller (:func:`repro.persist.restore_context`) has already
        validated the snapshot against the graph version and dropped
        delta-touched entries, so insertion is unconditional -- except
        that a *live* entry for the same signature wins (it is at least
        as fresh as the persisted one).  Restores do not count as hits
        or misses; only ``stats.size`` moves.
        """
        restored = 0
        with self._lock:
            self._validate_locked()
            for query, count, limit in entries:
                key = query.signature()
                if key in self._entries:
                    continue
                self._entries[key] = (count, limit)
                self._profiles[key] = query_touch_profile(query)
                self._wires[key] = query_to_wire(query)
                restored += 1
                if self.max_entries is not None:
                    while len(self._entries) > self.max_entries:
                        evicted = next(iter(self._entries))
                        del self._entries[evicted]
                        self._profiles.pop(evicted, None)
                        self._wires.pop(evicted, None)
            self.stats.size = len(self._entries)
        return restored

    def __len__(self) -> int:
        return len(self._entries)
