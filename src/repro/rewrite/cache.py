"""Query-result caching for the rewriting engines (Contribution 4, App. B.2).

Rewriting engines evaluate many overlapping query variants; different
search branches frequently reach the *same* relaxed query through
different modification sequences.  The cache memoises bounded
cardinalities by canonical query signature so each distinct variant is
executed at most once, and exports the hit/size counters reported in the
Appendix B.2 resource-consumption experiment.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.query import GraphQuery
from repro.matching.evalcache import CacheStats, EvaluationCache
from repro.matching.matcher import PatternMatcher

__all__ = ["CacheStats", "QueryResultCache"]


class QueryResultCache:
    """Memoises bounded match counts keyed by canonical query signature.

    A cached count is reusable only when it was computed with at least
    the requested evaluation limit, so the cache stores the limit next to
    the count (``None`` = unbounded, always reusable).

    The wrapped matcher's plan and candidate caches are shared per graph,
    so even a cache *miss* here reuses the evaluation-layer derivations of
    every other engine bound to the same graph.

    ``max_entries`` bounds the cache for long-lived owners (the execution
    contexts a :class:`~repro.service.WhyQueryService` keeps warm): when
    the bound is hit, the oldest entries are evicted first.  ``None``
    keeps the historical unbounded behaviour for short-lived engines.
    """

    def __init__(
        self, matcher: PatternMatcher, max_entries: Optional[int] = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.matcher = matcher
        self.max_entries = max_entries
        self._version = matcher.graph.version
        self._entries: Dict[Hashable, tuple] = {}
        self.stats = CacheStats()

    @property
    def evalcache(self) -> EvaluationCache:
        """The evaluation cache shared with the wrapped matcher."""
        return self.matcher.evalcache

    def _validate(self) -> None:
        """Self-invalidate when the data graph has been mutated."""
        if self.matcher.graph.version != self._version:
            self._entries.clear()
            self._version = self.matcher.graph.version
            self.stats.size = 0

    def count(self, query: GraphQuery, limit: Optional[int] = None) -> int:
        """Cardinality of ``query`` (bounded by ``limit``), cached."""
        self._validate()
        key = query.signature()
        entry = self._entries.get(key)
        if entry is not None:
            cached_count, cached_limit = entry
            reusable = (
                cached_limit is None
                or (limit is not None and cached_limit >= limit)
                # a count strictly below its own limit is exact
                or cached_count < cached_limit
            )
            if reusable:
                self.stats.hits += 1
                if limit is not None and cached_count > limit:
                    return limit
                return cached_count
        self.stats.misses += 1
        count = self.matcher.count(query, limit=limit)
        self._entries[key] = (count, limit)
        if self.max_entries is not None:
            # dicts iterate in insertion order: evict oldest-first
            while len(self._entries) > self.max_entries:
                del self._entries[next(iter(self._entries))]
        self.stats.size = len(self._entries)
        return count

    def invalidate(self) -> None:
        """Drop all entries (used when the data graph changes)."""
        self._entries.clear()
        self.stats.size = 0

    def __len__(self) -> int:
        return len(self._entries)
