"""Query-result caching for the rewriting engines (Contribution 4, App. B.2).

Rewriting engines evaluate many overlapping query variants; different
search branches frequently reach the *same* relaxed query through
different modification sequences.  The cache memoises bounded
cardinalities by canonical query signature so each distinct variant is
executed at most once, and exports the hit/size counters reported in the
Appendix B.2 resource-consumption experiment.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Optional

from repro.core.delta import (
    QueryTouchProfile,
    delta_touch,
    query_touch_profile,
    touch_affects_query,
)
from repro.core.query import GraphQuery
from repro.matching.evalcache import CacheStats, EvaluationCache
from repro.matching.matcher import PatternMatcher

__all__ = ["CacheStats", "QueryResultCache"]


class QueryResultCache:
    """Memoises bounded match counts keyed by canonical query signature.

    A cached count is reusable only when it was computed with at least
    the requested evaluation limit, so the cache stores the limit next to
    the count (``None`` = unbounded, always reusable).

    The wrapped matcher's plan and candidate caches are shared per graph,
    so even a cache *miss* here reuses the evaluation-layer derivations of
    every other engine bound to the same graph.

    ``max_entries`` bounds the cache for long-lived owners (the execution
    contexts a :class:`~repro.service.WhyQueryService` keeps warm):
    entries are promoted on every hit and the least-recently-*used* entry
    is evicted when the bound is hit, so a warm service context keeps its
    hot queries no matter how long ago they were first evaluated.
    ``None`` keeps the historical unbounded behaviour for short-lived
    engines.

    Thread-safety: concurrent service requests share one cache, and LRU
    promotion/eviction are multi-step dict mutations, so all bookkeeping
    runs under a lock; the matcher execution itself happens outside it
    (two threads missing the same key may both execute -- benign, the
    second result simply overwrites the first).
    """

    def __init__(
        self, matcher: PatternMatcher, max_entries: Optional[int] = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.matcher = matcher
        self.max_entries = max_entries
        self._version = matcher.graph.version
        self._entries: Dict[Hashable, tuple] = {}
        #: key -> touch profile of the cached query, for delta scoping
        self._profiles: Dict[Hashable, QueryTouchProfile] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @property
    def evalcache(self) -> EvaluationCache:
        """The evaluation cache shared with the wrapped matcher."""
        return self.matcher.evalcache

    def _validate_locked(self) -> None:
        """Catch up with a mutated data graph, delta-scoped.

        While the graph's delta log still holds the records since this
        cache's snapshot, only entries whose query depends on a touched
        attribute or edge type are dropped; a count over untouched
        types/attributes cannot have changed.  No log (or an overrun
        ring) falls back to the wholesale clear.
        """
        graph = self.matcher.graph
        if graph.version == self._version:
            return
        deltas_since = getattr(graph, "deltas_since", None)
        deltas = deltas_since(self._version) if deltas_since is not None else None
        if deltas is None:
            self._entries.clear()
            self._profiles.clear()
        else:
            touch = delta_touch(deltas)
            stale = [
                key
                for key, profile in self._profiles.items()
                if touch_affects_query(touch, profile)
            ]
            for key in stale:
                del self._entries[key]
                del self._profiles[key]
        self._version = graph.version
        self.stats.size = len(self._entries)

    def count(self, query: GraphQuery, limit: Optional[int] = None) -> int:
        """Cardinality of ``query`` (bounded by ``limit``), cached."""
        key = query.signature()
        with self._lock:
            self._validate_locked()
            entry = self._entries.get(key)
            if entry is not None:
                cached_count, cached_limit = entry
                reusable = (
                    cached_limit is None
                    or (limit is not None and cached_limit >= limit)
                    # a count strictly below its own limit is exact
                    or cached_count < cached_limit
                )
                if reusable:
                    self.stats.hits += 1
                    if self.max_entries is not None:
                        # LRU promotion: move the hit to the back of the
                        # (insertion-ordered) dict so eviction drops the
                        # least-recently-used entry, not the oldest-inserted
                        self._entries[key] = self._entries.pop(key)
                    if limit is not None and cached_count > limit:
                        return limit
                    return cached_count
            self.stats.misses += 1
        count = self.matcher.count(query, limit=limit)
        with self._lock:
            # pop-then-set so a re-computed entry (stale bounded count)
            # also lands in the most-recently-used position
            self._entries.pop(key, None)
            self._entries[key] = (count, limit)
            self._profiles[key] = query_touch_profile(query)
            if self.max_entries is not None:
                # dicts iterate in insertion/promotion order: evict LRU-first
                while len(self._entries) > self.max_entries:
                    evicted = next(iter(self._entries))
                    del self._entries[evicted]
                    self._profiles.pop(evicted, None)
            self.stats.size = len(self._entries)
        return count

    def invalidate(self) -> None:
        """Drop all entries (used when the data graph changes)."""
        with self._lock:
            self._entries.clear()
            self._profiles.clear()
            self.stats.size = 0

    def __len__(self) -> int:
        return len(self._entries)
