"""Coarse-grained why-empty query rewriting (Chapter 5).

System architecture (Sec. 5.1.1): a candidate generator applies
whole-constraint relaxations (predicates, types, directions, edges,
vertices) to the failed query; a statistics-driven priority function
(Sec. 5.3) orders the open candidates; the evaluator executes the most
promising candidate with a bounded count, consulting the query-result
cache (App. B.2) first; the first non-empty candidates are returned as
modification-based explanations.  A user-preference model (Sec. 5.4) can
re-weight priorities between calls.

The evaluator drains the queue in *budgeted batches* through the shared
:class:`~repro.exec.evaluator.CandidateEvaluator`: with the default
:class:`~repro.exec.evaluator.SerialExecutor` the batch size is 1 (the
thesis' sequential formulation, no speculative budget spend); with a
:class:`~repro.exec.evaluator.ParallelExecutor` the top `batch_size`
candidates are evaluated concurrently and folded back in priority
order, which keeps the search deterministic for a fixed batch size.

The engine purposely ignores a cardinality threshold: "this approach does
not consider the cardinality threshold and therefore is more appropriate
for solving why-empty queries" (Contribution 4).  Threshold-driven
rewriting is Chapter 6's fine-grained engine.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Set, Tuple, Union

from repro.core.errors import MalformedQueryError, RewritingError
from repro.core.graph import PropertyGraph
from repro.core.query import GraphQuery
from repro.exec.evaluator import (
    BatchExecutor,
    CandidateEvaluator,
    EvaluationBudget,
    SerialExecutor,
)
from repro.exec.wiring import resolve_spine
from repro.matching.matcher import PatternMatcher
from repro.obs.tracing import SPAN_REWRITE, current_tracer
from repro.metrics.syntactic import syntactic_distance
from repro.rewrite.cache import QueryResultCache
from repro.rewrite.operations import Modification, coarse_relaxations
from repro.rewrite.preference_model import RewritePreferenceModel
from repro.rewrite.priority import (
    CandidateContext,
    PriorityFunction,
    get_priority_function,
)
from repro.rewrite.statistics import GraphStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.exec.context import ExecutionContext


@dataclass(frozen=True)
class RewrittenQuery:
    """One modification-based explanation produced by the rewriter."""

    query: GraphQuery
    cardinality: int
    syntactic: float
    modifications: Tuple[Modification, ...]
    estimate: float

    def describe(self) -> str:
        steps = "; ".join(op.describe() for op in self.modifications)
        return (
            f"cardinality {self.cardinality}, syntactic distance "
            f"{self.syntactic:.3f}: {steps}"
        )


@dataclass
class ConvergencePoint:
    """One sample of the search progress (Sec. 5.5.2)."""

    evaluations: int
    elapsed: float
    found: int
    best_syntactic: Optional[float]


@dataclass
class CoarseRewriteResult:
    """Explanations plus full search instrumentation.

    ``explanations`` is sorted by syntactic closeness (the user-facing
    ranking); ``discovered`` keeps the same rewritings in the order the
    search produced them (the order an interactive session shows them).
    """

    explanations: List[RewrittenQuery]
    evaluated: int
    generated: int
    queue_peak: int
    elapsed: float
    budget_exhausted: bool
    convergence: List[ConvergencePoint] = field(default_factory=list)
    discovered: List[RewrittenQuery] = field(default_factory=list)

    @property
    def best(self) -> Optional[RewrittenQuery]:
        return self.explanations[0] if self.explanations else None


@dataclass(order=True)
class _QueueEntry:
    #: (preference bucket, -priority, tiebreak counter): the preference
    #: bucket is lexicographically dominant, so user objections re-order
    #: the queue regardless of the priority function's scale (Sec. 5.4.2)
    sort_key: Tuple[int, float, int]
    query: GraphQuery = field(compare=False)
    modifications: Tuple[Modification, ...] = field(compare=False)
    estimate: float = field(compare=False)


class CoarseRewriter:
    """Priority-driven relaxation search for why-empty queries."""

    def __init__(
        self,
        graph: Optional[PropertyGraph] = None,
        priority: Union[str, PriorityFunction] = "hybrid",
        matcher: Optional[PatternMatcher] = None,
        cache: Optional[QueryResultCache] = None,
        statistics: Optional[GraphStatistics] = None,
        preference_model: Optional[RewritePreferenceModel] = None,
        max_evaluations: int = 300,
        max_depth: Optional[int] = None,
        count_limit: int = 1000,
        op_filter: Optional[Callable[[Modification], bool]] = None,
        context: Optional["ExecutionContext"] = None,
        executor: Optional[BatchExecutor] = None,
        batch_size: Optional[int] = None,
        budget: Optional[EvaluationBudget] = None,
        on_candidate: Optional[Callable[..., None]] = None,
        tracer=None,
    ) -> None:
        # explicit components win, then the context's spine, then fresh wiring
        self.graph, self.matcher, self.cache, self.statistics = resolve_spine(
            graph, context, matcher=matcher, cache=cache, statistics=statistics
        )
        #: request tracer; ``None`` resolves the ambient one per rewrite
        self.tracer = tracer
        self.preference_model = preference_model
        self.priority_fn = (
            get_priority_function(priority) if isinstance(priority, str) else priority
        )
        self.max_evaluations = max_evaluations
        self.max_depth = max_depth
        self.count_limit = count_limit
        #: optional hard constraint on applicable operations (e.g. the
        #: user's immutable elements); rejected operations are never
        #: generated, unlike the soft preference-model re-weighting
        self.op_filter = op_filter
        self.executor: BatchExecutor = (
            executor if executor is not None else SerialExecutor()
        )
        if batch_size is None:
            batch_size = getattr(self.executor, "preferred_batch", 1)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        #: queue entries drained and evaluated per round; defaults to the
        #: executor's preferred batch (1 serial, worker count parallel)
        self.batch_size = batch_size
        #: externally managed evaluation allowance (e.g. a per-request
        #: lease carved from a service-level budget pool); when given it
        #: is the hard bound instead of ``max_evaluations``, and spend is
        #: shared with every other engine holding the same budget
        self.budget = budget
        #: incremental-results seam: invoked once per evaluated candidate
        #: (an :class:`~repro.exec.evaluator.EvaluatedCandidate`) as each
        #: batch finishes, so streaming consumers see the search progress
        #: live; exceptions raised here abort the search (cooperative
        #: cancellation)
        self.on_candidate = on_candidate

    # -- public API ----------------------------------------------------------

    def rewrite(self, query: GraphQuery, k: int = 1) -> CoarseRewriteResult:
        """Produce up to ``k`` non-empty rewritings of a failed query.

        Raises :class:`ValueError` when the input query is not actually
        empty (the holistic engine dispatches those cases elsewhere).
        """
        tracer = self.tracer if self.tracer is not None else current_tracer()
        with tracer.span(SPAN_REWRITE, engine="coarse") as span:
            result = self._rewrite(query, k, tracer)
            if tracer.enabled:
                span.attributes["evaluated"] = result.evaluated
                span.attributes["found"] = len(result.explanations)
                span.attributes["budget_exhausted"] = result.budget_exhausted
            return result

    def _rewrite(self, query: GraphQuery, k: int, tracer) -> CoarseRewriteResult:
        if self.cache.count(query, limit=1) > 0:
            raise ValueError(
                "query delivers results; coarse rewriting targets why-empty"
            )
        start = time.perf_counter()
        counter = itertools.count()
        original_estimate = self.statistics.estimate_query_cardinality(query)
        budget = (
            self.budget
            if self.budget is not None
            else EvaluationBudget(self.max_evaluations)
        )
        evaluator = CandidateEvaluator(
            self.cache,
            executor=self.executor,
            budget=budget,
            count_limit=self.count_limit,
            on_result=self.on_candidate,
            tracer=tracer,
        )

        heap: List[_QueueEntry] = []
        seen: Set = {query.signature()}
        generated = 0
        queue_peak = 0
        budget_exhausted = False
        found: List[RewrittenQuery] = []
        convergence: List[ConvergencePoint] = []

        def push_children(
            base: GraphQuery,
            base_mods: Tuple[Modification, ...],
            base_estimate: float,
        ) -> None:
            nonlocal generated
            if self.max_depth is not None and len(base_mods) >= self.max_depth:
                return
            for op in coarse_relaxations(base):
                if self.op_filter is not None and not self.op_filter(op):
                    continue
                try:
                    child = op.apply(base)
                    child.validate()
                except (RewritingError, MalformedQueryError):
                    continue
                sig = child.signature()
                if sig in seen:
                    continue
                seen.add(sig)
                generated += 1
                mods = base_mods + (op,)
                ctx = CandidateContext(
                    original=query,
                    query=child,
                    modifications=mods,
                    parent_estimate=base_estimate,
                    statistics=self.statistics,
                )
                estimate = self.statistics.estimate_query_cardinality(child)
                priority = self.priority_fn(ctx)
                bucket = 0
                if self.preference_model is not None:
                    bucket = self.preference_model.penalty_bucket(mods)
                heapq.heappush(
                    heap,
                    _QueueEntry(
                        (bucket, -priority, next(counter)), child, mods, estimate
                    ),
                )

        push_children(query, (), original_estimate)

        def record_point() -> None:
            convergence.append(
                ConvergencePoint(
                    evaluations=budget.spent,
                    elapsed=time.perf_counter() - start,
                    found=len(found),
                    best_syntactic=min((f.syntactic for f in found), default=None),
                )
            )

        # Budgeted batch drain: pop the `batch_size` most promising open
        # candidates, evaluate them as one batch through the shared
        # evaluator, then fold the results back in priority order.  The
        # batch is truncated to the remaining budget, so the budget is a
        # hard bound exactly as in the sequential formulation.
        while heap and len(found) < k:
            if budget.exhausted:
                budget_exhausted = True
                break
            queue_peak = max(queue_peak, len(heap))
            entries: List[_QueueEntry] = []
            while heap and len(entries) < self.batch_size:
                entries.append(heapq.heappop(heap))
            results = evaluator.evaluate([e.query for e in entries])
            if len(results) < len(entries):
                # candidates past the budget: return them to the queue so
                # the reported queue state stays meaningful
                for entry in entries[len(results):]:
                    heapq.heappush(heap, entry)
                budget_exhausted = True
            for entry, result in zip(entries, results):
                if result.cardinality > 0:
                    if len(found) < k:
                        found.append(
                            RewrittenQuery(
                                query=entry.query,
                                cardinality=result.cardinality,
                                syntactic=syntactic_distance(query, entry.query),
                                modifications=entry.modifications,
                                estimate=entry.estimate,
                            )
                        )
                        record_point()
                    continue
                push_children(entry.query, entry.modifications, entry.estimate)
            if budget_exhausted:
                break
            # sample the convergence curve roughly every 10 evaluations
            if budget.spent % 10 < len(results):
                record_point()

        discovered = list(found)
        found.sort(key=lambda f: (f.syntactic, -f.cardinality))
        record_point()
        return CoarseRewriteResult(
            explanations=found,
            evaluated=budget.spent,
            generated=generated,
            queue_peak=queue_peak,
            elapsed=time.perf_counter() - start,
            budget_exhausted=budget_exhausted,
            convergence=convergence,
            discovered=discovered,
        )
