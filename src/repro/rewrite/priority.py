"""Priority functions of the query-candidate selector (Sec. 5.3, 5.5.1).

The coarse-grained rewriter keeps its open query candidates in a priority
queue; the *priority function* decides which relaxation is explored next.
The thesis evaluates several selector variants (Sec. 5.5.1-5.5.3); this
module provides them all:

``syntactic``
    explore minimally-changed candidates first (no statistics needed);
``estimated_cardinality``
    explore the candidate with the highest estimated result size first
    (full query estimate, Sec. 5.2);
``avg_path1``
    order by the average path(1) cardinality of the candidate's edges --
    cheap and robust (Sec. 5.5.3);
``induced_change``
    order by the *induced cardinality change* of the relaxation: how much
    the estimate grew relative to the parent candidate (Sec. 5.3.2);
``hybrid``
    the paper's combined selector: average path(1) cardinality weighted
    by the induced change, tie-broken by syntactic closeness
    (Sec. 5.5.3).

All functions return "bigger is better" scores; the rewriter also applies
the user-preference penalty (Sec. 5.4.2) on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.core.query import GraphQuery
from repro.metrics.syntactic import syntactic_distance
from repro.rewrite.operations import Modification
from repro.rewrite.statistics import GraphStatistics


@dataclass
class CandidateContext:
    """Everything a priority function may consult about one candidate."""

    original: GraphQuery
    query: GraphQuery
    modifications: Sequence[Modification]
    parent_estimate: Optional[float]
    statistics: GraphStatistics

    @property
    def depth(self) -> int:
        return len(self.modifications)


PriorityFunction = Callable[[CandidateContext], float]


def syntactic_priority(ctx: CandidateContext) -> float:
    """Prefer candidates that look most similar to the original query."""
    return -syntactic_distance(ctx.original, ctx.query)


def estimated_cardinality_priority(ctx: CandidateContext) -> float:
    """Prefer candidates with the largest estimated result size.

    Log-damped so a single exploding estimate does not dominate the queue
    forever; monotone, hence ordering-equivalent.
    """
    return math.log1p(ctx.statistics.estimate_query_cardinality(ctx.query))


def avg_path1_priority(ctx: CandidateContext) -> float:
    """Prefer candidates whose edges have large path(1) cardinalities."""
    return math.log1p(ctx.statistics.average_path1_cardinality(ctx.query))


def induced_change_priority(ctx: CandidateContext) -> float:
    """Prefer relaxations that increased the estimate the most.

    The induced cardinality change of Sec. 5.3.2: estimate(candidate) -
    estimate(parent); parents close to the failure frontier get explored
    once a single relaxation unlocks cardinality.
    """
    estimate = ctx.statistics.estimate_query_cardinality(ctx.query)
    parent = ctx.parent_estimate if ctx.parent_estimate is not None else 0.0
    return math.log1p(max(0.0, estimate - parent))


#: Weight of the syntactic-closeness term inside the hybrid priority.
#: The log-damped statistics terms live in roughly [0, 10]; weighting the
#: [-1, 0] closeness term by 10 makes a whole-vertex drop (distance ~0.4)
#: lose against a single-predicate drop (distance ~0.04) unless the
#: statistics overwhelmingly favour it -- the balance Sec. 5.5.3 reports.
HYBRID_CLOSENESS_WEIGHT = 10.0


def hybrid_priority(ctx: CandidateContext) -> float:
    """Sec. 5.5.3's best performer: path(1) + induced change + closeness."""
    path1 = avg_path1_priority(ctx)
    induced = induced_change_priority(ctx)
    closeness = -syntactic_distance(ctx.original, ctx.query)
    return path1 + induced + HYBRID_CLOSENESS_WEIGHT * closeness


PRIORITY_FUNCTIONS: Dict[str, PriorityFunction] = {
    "syntactic": syntactic_priority,
    "estimated_cardinality": estimated_cardinality_priority,
    "avg_path1": avg_path1_priority,
    "induced_change": induced_change_priority,
    "hybrid": hybrid_priority,
}


def get_priority_function(name: str) -> PriorityFunction:
    """Look up a priority function by its evaluation name."""
    try:
        return PRIORITY_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(sorted(PRIORITY_FUNCTIONS))
        raise KeyError(f"unknown priority function {name!r}; known: {known}") from None
