"""User-preference model for why-empty rewriting (Sec. 5.4).

The coarse rewriter proposes relaxed queries; the user rates each
proposal in [0, 1] ("how acceptable is this rewriting?").  From these
ratings the model learns, per query element, how strongly the user wants
the element's constraints *kept*: when a proposal that dropped element X
is rated badly, X's keep-weight rises; when it is rated well, the weight
falls.  The rewriter multiplies candidate priorities by the model's
penalty so disliked removals sink in the queue (Sec. 5.4.2) -- the user
steers the search without ever picking relaxation steps by hand
(non-intrusive integration, Sec. 3.1.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.rewrite.operations import ElementRef, Modification

#: Keep-weight assumed for elements without any feedback yet.
DEFAULT_KEEP_WEIGHT = 0.5


@dataclass
class RewritePreferenceModel:
    """Learns per-element keep-weights from proposal ratings.

    ``learning_rate`` controls how quickly feedback moves a weight;
    ``penalty_strength`` controls how strongly the learned weights bend
    the candidate priorities.
    """

    learning_rate: float = 0.5
    penalty_strength: float = 1.0
    keep_weights: Dict[ElementRef, float] = field(default_factory=dict)
    ratings_seen: int = 0

    def keep_weight(self, element: ElementRef) -> float:
        return self.keep_weights.get(element, DEFAULT_KEEP_WEIGHT)

    def rate_proposal(
        self, modifications: Sequence[Modification], rating: float
    ) -> None:
        """Record the user's rating of one proposed rewriting.

        A rating of 0 means "this proposal removed something I need":
        every touched element's keep-weight moves towards 1.  A rating of
        1 moves the touched weights towards 0 (freely modifiable).
        """
        if not 0.0 <= rating <= 1.0:
            raise ValueError(f"rating must be in [0, 1], got {rating}")
        self.ratings_seen += 1
        target = 1.0 - rating
        for op in modifications:
            element = op.target
            current = self.keep_weight(element)
            self.keep_weights[element] = current + self.learning_rate * (
                target - current
            )

    def modification_penalty(self, modifications: Sequence[Modification]) -> float:
        """Largest keep-weight among the elements a candidate touches.

        The maximum (not the mean) matters: a proposal is objectionable as
        soon as it touches *one* element the user insists on keeping, and
        a mean would let long modification sequences dilute the protected
        element's weight with unrated collateral operations.
        """
        if not modifications:
            return 0.0
        return max(self.keep_weight(op.target) for op in modifications)

    def adjust_priority(
        self, priority: float, modifications: Sequence[Modification]
    ) -> float:
        """Re-weight a candidate priority with the learned preferences.

        Applies a multiplicative damping in (0, 1]: candidates touching
        only protected elements are pushed to the back of the queue but
        never become unreachable (the search must stay complete).
        """
        penalty = self.modification_penalty(modifications)
        damping = 1.0 - self.penalty_strength * penalty * 0.9
        # priorities may be negative (e.g. -syntactic distance); shift the
        # damping to an additive penalty in that case to keep ordering sane
        if priority >= 0:
            return priority * damping
        return priority - self.penalty_strength * penalty

    def penalty_bucket(
        self, modifications: Sequence[Modification], buckets: int = 4
    ) -> int:
        """Discretised penalty for scale-free lexicographic ordering.

        The rewriter orders open candidates by ``(bucket, -priority)``:
        any candidate the user has (transitively) objected to sorts after
        every candidate in a lower bucket, regardless of how the priority
        function scales -- neutral elements (weight 0.5) land in the
        middle bucket, protected ones (weight -> 1) in the last.
        """
        penalty = self.modification_penalty(modifications)
        return min(buckets - 1, int(penalty * buckets))

    def protected_elements(self, threshold: float = 0.75) -> Tuple[ElementRef, ...]:
        """Elements the model currently considers user-critical."""
        return tuple(
            sorted(e for e, w in self.keep_weights.items() if w >= threshold)
        )
