"""Coarse-grained modification-based explanations (Chapter 5)."""

from repro.rewrite.cache import CacheStats, QueryResultCache
from repro.rewrite.coarse import (
    CoarseRewriteResult,
    CoarseRewriter,
    ConvergencePoint,
    RewrittenQuery,
)
from repro.rewrite.operations import (
    AddPredicate,
    AddPredicateValue,
    AttributeDomain,
    DropEdge,
    DropPredicate,
    DropTypeConstraint,
    DropVertex,
    Modification,
    NarrowInterval,
    RelaxDirection,
    RemovePredicateValue,
    RestrictDirection,
    WidenInterval,
    coarse_relaxations,
    fine_concretisations,
    fine_relaxations,
)
from repro.rewrite.preference_model import RewritePreferenceModel
from repro.rewrite.priority import (
    PRIORITY_FUNCTIONS,
    CandidateContext,
    avg_path1_priority,
    estimated_cardinality_priority,
    get_priority_function,
    hybrid_priority,
    induced_change_priority,
    syntactic_priority,
)
from repro.rewrite.statistics import GraphStatistics

__all__ = [
    "AddPredicate",
    "AddPredicateValue",
    "AttributeDomain",
    "CacheStats",
    "CandidateContext",
    "CoarseRewriteResult",
    "CoarseRewriter",
    "ConvergencePoint",
    "DropEdge",
    "DropPredicate",
    "DropTypeConstraint",
    "DropVertex",
    "GraphStatistics",
    "Modification",
    "NarrowInterval",
    "PRIORITY_FUNCTIONS",
    "QueryResultCache",
    "RelaxDirection",
    "RemovePredicateValue",
    "RestrictDirection",
    "RewritePreferenceModel",
    "RewrittenQuery",
    "WidenInterval",
    "avg_path1_priority",
    "coarse_relaxations",
    "estimated_cardinality_priority",
    "fine_concretisations",
    "fine_relaxations",
    "get_priority_function",
    "hybrid_priority",
    "induced_change_priority",
    "syntactic_priority",
]
