"""One unified stats schema for every reporting surface.

Before this module, the three reporting surfaces each invented their own
nesting and key names:

* ``PatternMatcher.cache_info()`` -- ``{"plan": ..., "vertex_candidates":
  ..., "programs": <flat csr counters>}``;
* ``ProcessExecutor.info()`` -- one flat dict mixing pool lifecycle,
  payload accounting and delta counters;
* ``WhyQueryService.stats()`` -- a third nesting with a flat ``totals``
  dict whose keys (``csr_builds``, ``program_hits``, ...) matched neither
  of the other two.

A network front door (:mod:`repro.server`) serving a ``stats`` message
needs *one* schema, so this module defines it:

======================  =====================================================
``caches``              named hit/miss cache layers (``plan``,
                        ``vertex_candidates``, ``results``, ...)
``csr``                 interned CSR array accounting (``builds``, ``bytes``,
                        ``patches``, ``rebuilds``, ``evictions``)
``programs``            compiled match kernels (``compiled``, ``hits``)
``pools``               worker/context pool lifecycle and payload accounting
``admission``           :class:`~repro.service.BudgetPool` counters
``deltas``              delta-sync pipeline (``applied``, ``bytes``,
                        ``worker_catchups``)
``metrics``             process-wide :mod:`repro.obs` registry snapshot
                        (``counters``, ``gauges``, ``histograms``)
======================  =====================================================

Every surface emits **all seven sections** (``None``/empty when the surface
has nothing to report there) plus surface-specific extras (``matcher``,
``service``, ``per_graph``), under a ``"schema"`` version tag.  The
protocol ``stats`` message serves :meth:`WhyQueryService.stats` verbatim.

Deprecation shim
----------------

The pre-unification shapes stay readable for one release: each surface
returns a :class:`StatsReport` -- a plain ``dict`` holding the unified
schema whose *legacy* keys (``stats()["totals"]``,
``cache_info()["programs"]``, ``info()["pool_live"]``, ...) still resolve,
emitting a :class:`DeprecationWarning` that names the replacement path.
Iteration, ``dict(report)`` and JSON serialisation see only the unified
keys.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "STATS_SCHEMA",
    "SECTIONS",
    "StatsReport",
    "csr_section",
    "deltas_section",
    "programs_section",
    "unified_stats",
]

#: schema identity tag carried by every unified report
STATS_SCHEMA = "repro.stats/1"

#: the typed sections every surface emits
SECTIONS = ("caches", "csr", "programs", "pools", "admission", "deltas", "metrics")


class StatsReport(dict):
    """Unified stats mapping with a deprecated legacy-key fallback.

    Subscripting a key that only existed in the surface's pre-unification
    shape resolves against the ``legacy`` mapping and emits a
    :class:`DeprecationWarning` naming the unified replacement.  All dict
    iteration/serialisation behaviour sees only the unified keys.
    """

    def __init__(
        self,
        data: Mapping[str, Any],
        legacy: Optional[Mapping[str, Any]] = None,
        hints: Optional[Mapping[str, str]] = None,
        surface: str = "stats",
    ) -> None:
        super().__init__(data)
        self._legacy = dict(legacy or {})
        self._hints = dict(hints or {})
        self._surface = surface

    def __missing__(self, key: str) -> Any:
        if key in self._legacy:
            hint = self._hints.get(key, "the unified sections")
            warnings.warn(
                f"{self._surface}[{key!r}] is the pre-unification shape; "
                f"read {hint} instead (repro.stats schema {STATS_SCHEMA}). "
                "The legacy key will be removed in the next release.",
                DeprecationWarning,
                stacklevel=2,
            )
            return self._legacy[key]
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default


def csr_section(flat: Mapping[str, int]) -> Dict[str, int]:
    """CSR accounting section from the flat :func:`csr_stats` counters."""
    return {
        "builds": int(flat.get("csr_builds", 0)),
        "bytes": int(flat.get("csr_bytes", 0)),
        "patches": int(flat.get("csr_patches", 0)),
        "rebuilds": int(flat.get("csr_rebuilds", 0)),
        "evictions": int(flat.get("csr_evictions", 0)),
    }


def programs_section(flat: Mapping[str, int]) -> Dict[str, int]:
    """Compiled-kernel section from the flat :func:`csr_stats` counters."""
    return {
        "compiled": int(flat.get("programs_compiled", 0)),
        "hits": int(flat.get("program_hits", 0)),
    }


def deltas_section(
    applied: int = 0, bytes: int = 0, worker_catchups: int = 0
) -> Dict[str, int]:
    """Delta-sync pipeline section."""
    return {
        "applied": int(applied),
        "bytes": int(bytes),
        "worker_catchups": int(worker_catchups),
    }


def unified_stats(
    caches: Optional[Mapping[str, Any]] = None,
    csr: Optional[Mapping[str, int]] = None,
    programs: Optional[Mapping[str, int]] = None,
    pools: Optional[Mapping[str, Any]] = None,
    admission: Optional[Mapping[str, Any]] = None,
    deltas: Optional[Mapping[str, int]] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, Any]] = None,
    legacy: Optional[Mapping[str, Any]] = None,
    hints: Optional[Mapping[str, str]] = None,
    surface: str = "stats",
) -> StatsReport:
    """Assemble one unified report; every section is always present."""

    def keep(value: Any) -> Any:
        # nested StatsReport sections keep their own legacy shim
        return value if isinstance(value, StatsReport) else dict(value)

    data: Dict[str, Any] = {"schema": STATS_SCHEMA}
    data["caches"] = keep(caches) if caches is not None else {}
    data["csr"] = keep(csr) if csr is not None else csr_section({})
    data["programs"] = keep(programs) if programs is not None else programs_section({})
    data["pools"] = keep(pools) if pools is not None else None
    data["admission"] = keep(admission) if admission is not None else None
    data["deltas"] = keep(deltas) if deltas is not None else deltas_section()
    data["metrics"] = keep(metrics) if metrics is not None else {}
    if extra:
        data.update(extra)
    return StatsReport(data, legacy=legacy, hints=hints, surface=surface)
