"""Plain-text reporting helpers for the experiment harness.

The benchmarks regenerate the thesis' tables and figure series as ASCII;
these helpers keep the output format consistent across experiments so
EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    columns = [[str(h)] + [_fmt(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(
    name: str, values: Sequence[float], max_points: int = 24
) -> str:
    """Compact rendering of a long ordered series (downsampled)."""
    if not values:
        return f"{name}: <empty>"
    if len(values) <= max_points:
        shown = list(values)
    else:
        step = (len(values) - 1) / (max_points - 1)
        shown = [values[round(i * step)] for i in range(max_points)]
    body = " ".join(f"{v:.2f}" if isinstance(v, float) else str(v) for v in shown)
    return f"{name} (n={len(values)}): {body}"


def format_cache_report(report: Dict[str, Dict[str, Any]]) -> str:
    """Render a nested cache-counter report (one line per cache layer).

    Accepts the unified :mod:`repro.stats` schema produced by
    ``PatternMatcher.cache_info`` / ``WhyQueryEngine.cache_report``
    (non-mapping entries such as the ``schema`` tag and empty sections
    are skipped) as well as any plain ``{layer: {counter: value}}``
    nesting.
    """
    lines = []
    for layer in sorted(report):
        counters_map = report[layer]
        if not isinstance(counters_map, dict) or not counters_map:
            continue
        counters = ", ".join(
            f"{key}={_fmt(value)}" for key, value in sorted(counters_map.items())
        )
        lines.append(f"{layer}: {counters}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Unicode sparkline of a numeric series (figures in a terminal)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) > width:
        step = (len(values) - 1) / (width - 1)
        values = [values[round(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    scale = (len(blocks) - 1) / (hi - lo)
    return "".join(blocks[round((v - lo) * scale)] for v in values)
