"""Experiment drivers regenerating every evaluated table and figure.

Each function reproduces one experiment of the thesis' evaluation
sections on the synthetic data sets (see DESIGN.md for the substitution
record and the experiment index).  The benchmarks in ``benchmarks/`` are
thin wrappers that time representative units with pytest-benchmark and
print these results; the functions can equally be called from a REPL.

All drivers are deterministic given their ``seed`` arguments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.query import GraphQuery
from repro.datasets import dbpedia, ldbc
from repro.datasets.workload import ExplanationSample, generate_explanations
from repro.exec.context import ExecutionContext
from repro.explain.bounded_mcs import bounded_mcs
from repro.explain.discover_mcs import discover_mcs
from repro.finegrained.baselines import GreedyCoarseSearch, RandomModificationSearch
from repro.finegrained.traverse_search_tree import TraverseSearchTree
from repro.matching.evalcache import shared_evaluation_cache
from repro.matching.plan import plan_cache_stats
from repro.metrics.cardinality import CardinalityProblem, CardinalityThreshold
from repro.rewrite.coarse import CoarseRewriter
from repro.rewrite.preference_model import RewritePreferenceModel
from repro.rewrite.priority import PRIORITY_FUNCTIONS

#: Default cardinality factors of the Sec. 3.2.5 protocol.
CARDINALITY_FACTORS: Tuple[float, ...] = (0.2, 0.5, 2.0, 5.0)


def load_dataset(name: str):
    """``('ldbc'|'dbpedia') -> (bundle, queries dict, empty-variant fn)``."""
    if name == "ldbc":
        return ldbc.generate(), ldbc.queries(), ldbc.empty_variant
    if name == "dbpedia":
        return dbpedia.generate(), dbpedia.queries(), dbpedia.empty_variant
    raise KeyError(f"unknown dataset {name!r}")


# ---------------------------------------------------------------------------
# Chapter 3: comparison-metric evaluation (Figs. 3.7-3.10)
# ---------------------------------------------------------------------------


def fig3_random_explanations(
    dataset: str = "ldbc",
    factors: Sequence[float] = CARDINALITY_FACTORS,
    max_candidates: int = 80,
    seed: int = 17,
    queries: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[float, List[ExplanationSample]]]:
    """Shared workload of Figs. 3.7-3.10: random explanations per query/factor."""
    bundle, all_queries, _ = load_dataset(dataset)
    selected = queries or list(all_queries)
    out: Dict[str, Dict[float, List[ExplanationSample]]] = {}
    for name in selected:
        out[name] = {}
        for factor in factors:
            out[name][factor] = generate_explanations(
                bundle.graph,
                all_queries[name],
                cardinality_factor=factor,
                seed=seed,
                max_candidates=max_candidates,
            )
    return out


def fig3_10_correlation(
    samples: Sequence[ExplanationSample], buckets: int = 8
) -> List[Tuple[float, float, int]]:
    """Average result distance per syntactic-distance interval (Sec. 3.2.5).

    Returns ``(bucket_upper_bound, mean_result_distance, count)`` rows.
    """
    if not samples:
        return []
    width = 1.0 / buckets
    sums = [0.0] * buckets
    counts = [0] * buckets
    for s in samples:
        idx = min(buckets - 1, int(s.syntactic / width))
        sums[idx] += s.result
        counts[idx] += 1
    return [
        ((i + 1) * width, sums[i] / counts[i], counts[i])
        for i in range(buckets)
        if counts[i]
    ]


# ---------------------------------------------------------------------------
# Chapter 4: DISCOVERMCS / BOUNDEDMCS evaluation (Sec. 4.5)
# ---------------------------------------------------------------------------


@dataclass
class McsRow:
    """One row of the Sec. 4.5 result tables."""

    query: str
    strategy: str
    coverage: float
    mcs_edges: int
    evaluations: int
    annotation_evaluations: int
    elapsed: float
    alternatives: int


def fig4_discovermcs(
    dataset: str = "ldbc",
    strategies: Sequence[str] = ("frontier", "single-path"),
) -> List[McsRow]:
    """Sec. 4.5.1: DISCOVERMCS on the empty variants of all queries."""
    bundle, queries, empty_variant = load_dataset(dataset)
    rows: List[McsRow] = []
    for name in queries:
        failed = empty_variant(name)
        for strategy in strategies:
            result = discover_mcs(bundle.graph, failed, strategy=strategy)
            rows.append(
                McsRow(
                    query=name,
                    strategy=strategy,
                    coverage=result.differential.coverage,
                    mcs_edges=len(result.differential.mcs_edges),
                    evaluations=result.stats.evaluations,
                    annotation_evaluations=result.stats.annotation_evaluations,
                    elapsed=result.stats.elapsed,
                    alternatives=len(result.alternatives),
                )
            )
    return rows


def fig4_boundedmcs(
    dataset: str = "ldbc",
    factors: Sequence[float] = (0.2, 0.5),
    strategies: Sequence[str] = ("frontier", "single-path"),
) -> List[McsRow]:
    """Sec. 4.5.2: BOUNDEDMCS on the too-many-answers problem.

    The original queries are used as-is; the threshold is the original
    cardinality scaled by the factor, so every query is "too many"
    relative to it.
    """
    bundle, queries, _ = load_dataset(dataset)
    context = ExecutionContext.for_graph(bundle.graph)
    rows: List[McsRow] = []
    for name, query in queries.items():
        original = context.count(query)
        for factor in factors:
            upper = max(1, round(original * factor))
            threshold = CardinalityThreshold.at_most(upper)
            for strategy in strategies:
                result = bounded_mcs(
                    bundle.graph,
                    query,
                    threshold,
                    problem=CardinalityProblem.TOO_MANY,
                    strategy=strategy,
                )
                rows.append(
                    McsRow(
                        query=f"{name} (C*{factor})",
                        strategy=strategy,
                        coverage=result.differential.coverage,
                        mcs_edges=len(result.differential.mcs_edges),
                        evaluations=result.stats.evaluations,
                        annotation_evaluations=result.stats.annotation_evaluations,
                        elapsed=result.stats.elapsed,
                        alternatives=len(result.alternatives),
                    )
                )
    return rows


# ---------------------------------------------------------------------------
# Chapter 5: coarse rewriting evaluation (Sec. 5.5, App. B)
# ---------------------------------------------------------------------------


@dataclass
class PriorityRow:
    """One row of the Sec. 5.5.1 priority-function comparison."""

    query: str
    priority: str
    found: bool
    evaluated: int
    generated: int
    best_cardinality: Optional[int]
    best_syntactic: Optional[float]
    elapsed: float
    #: per-graph shared evaluation-cache hits this run contributed
    plan_hits: int = 0
    candidate_hits: int = 0


def fig5_priorities(
    dataset: str = "ldbc",
    priorities: Sequence[str] = tuple(sorted(PRIORITY_FUNCTIONS)),
    max_evaluations: int = 150,
) -> List[PriorityRow]:
    """Sec. 5.5.1: candidate-selector priority functions head-to-head.

    The per-row ``plan_hits``/``candidate_hits`` deltas show how much of
    each run's evaluation work was served by the per-graph shared caches:
    from the second priority function onward, the same query variants are
    re-evaluated and their plans and candidate sets are reused.
    """
    bundle, queries, empty_variant = load_dataset(dataset)
    plan_stats = plan_cache_stats(bundle.graph)
    candidate_stats = shared_evaluation_cache(bundle.graph).stats
    rows: List[PriorityRow] = []
    for name in queries:
        failed = empty_variant(name)
        for priority in priorities:
            plan_before = plan_stats.hits
            candidates_before = candidate_stats.hits
            # a fresh private context per run: the row-level deltas show
            # how much of each run the per-graph *shared* caches absorbed
            rewriter = CoarseRewriter(
                context=ExecutionContext(bundle.graph),
                priority=priority,
                max_evaluations=max_evaluations,
            )
            result = rewriter.rewrite(failed, k=1)
            best = result.best
            rows.append(
                PriorityRow(
                    query=name,
                    priority=priority,
                    found=best is not None,
                    evaluated=result.evaluated,
                    generated=result.generated,
                    best_cardinality=best.cardinality if best else None,
                    best_syntactic=best.syntactic if best else None,
                    elapsed=result.elapsed,
                    plan_hits=plan_stats.hits - plan_before,
                    candidate_hits=candidate_stats.hits - candidates_before,
                )
            )
    return rows


def fig5_convergence(
    dataset: str = "ldbc",
    query_name: str = "LDBC QUERY 2",
    priorities: Sequence[str] = ("syntactic", "hybrid"),
    k: int = 5,
    max_evaluations: int = 200,
):
    """Sec. 5.5.2: convergence traces (found explanations over time)."""
    bundle, _, empty_variant = load_dataset(dataset)
    failed = empty_variant(query_name)
    traces = {}
    for priority in priorities:
        rewriter = CoarseRewriter(
            context=ExecutionContext(bundle.graph),
            priority=priority,
            max_evaluations=max_evaluations,
        )
        result = rewriter.rewrite(failed, k=k)
        traces[priority] = result.convergence
    return traces


@dataclass
class UserIntegrationRow:
    """One row of the Sec. 5.5.4 / App. B.1 user-integration experiment."""

    query: str
    protected: str
    proposals_without_model: int
    proposals_with_model: int
    accepted_without: bool
    accepted_with: bool


def fig5_user_integration(
    dataset: str = "ldbc",
    max_rounds: int = 25,
) -> List[UserIntegrationRow]:
    """Sec. 5.5.4: does the learned preference model reduce iterations?

    Simulated user: the rewriter's first proposal touches elements the
    user insists on keeping (the *protected* set); the user rejects every
    proposal touching any of them.  Scenarios where every possible fix
    touches the protected set (the failure is pinned to one element) are
    unsatisfiable for any preference handling and are skipped.

    *Without* the model the user inspects the engine's proposals in
    discovery order.  *With* the model each rejection is fed back as a
    rating, which re-weights the search; the engine should surface an
    acceptable proposal in at most as many rounds.  Both arms use the
    default hybrid selector -- the engine a deployment would run.
    """
    bundle, queries, empty_variant = load_dataset(dataset)
    variant_families = [("", empty_variant)]
    module = ldbc if dataset == "ldbc" else dbpedia
    variant_families.append((" [edge poison]", module.empty_variant_edge))
    rows: List[UserIntegrationRow] = []
    for name in queries:
      for suffix, variant_fn in variant_families:
        failed = variant_fn(name)
        plain = CoarseRewriter(
            context=ExecutionContext(bundle.graph),
            priority="hybrid",
            max_evaluations=300,
        ).rewrite(failed, k=max_rounds)
        if not plain.discovered:
            continue
        protected = {op.target for op in plain.discovered[0].modifications}

        def acceptable(rewriting) -> bool:
            return not any(op.target in protected for op in rewriting.modifications)

        # Satisfiability oracle: a rewriter hard-constrained to never touch
        # the protected elements.  If even that finds nothing, the failure
        # is pinned to the protected element and no preference handling
        # can help -- the scenario is skipped.
        oracle = CoarseRewriter(
            context=ExecutionContext(bundle.graph),
            priority="hybrid",
            max_evaluations=300,
            op_filter=lambda op: op.target not in protected,
        ).rewrite(failed, k=1)
        if oracle.best is None:
            continue

        # Without model: walk the discovery-ordered proposals.
        without_rounds = max_rounds
        accepted_without = False
        for i, rewriting in enumerate(plain.discovered):
            if acceptable(rewriting):
                without_rounds = i + 1
                accepted_without = True
                break

        # With model: iterative propose-rate loop (fresh top-1 per round).
        model = RewritePreferenceModel(learning_rate=0.9, penalty_strength=1.0)
        with_rounds = max_rounds
        accepted_with = False
        for round_no in range(1, max_rounds + 1):
            rewriter = CoarseRewriter(
                context=ExecutionContext(bundle.graph),
                priority="hybrid",
                preference_model=model,
                max_evaluations=300,
            )
            result = rewriter.rewrite(failed, k=1)
            if result.best is None:
                break
            if acceptable(result.best):
                with_rounds = round_no
                accepted_with = True
                break
            model.rate_proposal(result.best.modifications, rating=0.0)
        rows.append(
            UserIntegrationRow(
                query=name + suffix,
                protected=", ".join(f"{k}{i}" for k, i in sorted(protected)),
                proposals_without_model=without_rounds,
                proposals_with_model=with_rounds,
                accepted_without=accepted_without,
                accepted_with=accepted_with,
            )
        )
    return rows


@dataclass
class ResourceRow:
    """One row of the App. B.2 resource-consumption report."""

    query: str
    evaluated: int
    generated: int
    queue_peak: int
    cache_entries: int
    cache_hits: int
    cache_hit_rate: float
    #: shared evaluation-cache activity attributable to this run
    plan_hits: int = 0
    candidate_hits: int = 0
    candidate_hit_rate: float = 0.0
    matcher_steps: int = 0


def appB_resources(dataset: str = "ldbc", k: int = 3) -> List[ResourceRow]:
    """App. B.2: evaluated candidates, queue growth, cache effectiveness.

    Reports the query-result cache per run, plus the per-run deltas of the
    graph-shared plan/candidate caches and the matcher's ``steps``
    instrumentation, so every cache layer's effectiveness is visible.
    """
    bundle, queries, empty_variant = load_dataset(dataset)
    plan_stats = plan_cache_stats(bundle.graph)
    candidate_stats = shared_evaluation_cache(bundle.graph).stats
    rows: List[ResourceRow] = []
    for name in queries:
        failed = empty_variant(name)
        # private context per run -> per-run result-cache effectiveness
        context = ExecutionContext(bundle.graph)
        matcher = context.matcher
        cache = context.cache
        rewriter = CoarseRewriter(context=context, max_evaluations=200)
        plan_before = plan_stats.hits
        candidates_before = candidate_stats.snapshot()
        result = rewriter.rewrite(failed, k=k)
        candidate_hits = candidate_stats.hits - candidates_before.hits
        candidate_requests = candidate_stats.requests - candidates_before.requests
        rows.append(
            ResourceRow(
                query=name,
                evaluated=result.evaluated,
                generated=result.generated,
                queue_peak=result.queue_peak,
                cache_entries=len(cache),
                cache_hits=cache.stats.hits,
                cache_hit_rate=cache.stats.hit_rate,
                plan_hits=plan_stats.hits - plan_before,
                candidate_hits=candidate_hits,
                candidate_hit_rate=(
                    candidate_hits / candidate_requests if candidate_requests else 0.0
                ),
                matcher_steps=matcher.steps,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Chapter 6: fine-grained rewriting evaluation (Sec. 6.4)
# ---------------------------------------------------------------------------


@dataclass
class BaselineRow:
    """One row of the Sec. 6.4.2 baseline comparison."""

    scenario: str
    engine: str
    converged: bool
    distance: int
    cardinality: int
    syntactic: float
    evaluated: int
    elapsed: float


def fig6_scenarios(dataset: str = "ldbc") -> List[Tuple[str, GraphQuery, CardinalityThreshold]]:
    """The why-so-few / why-so-many scenarios of the Ch. 6 evaluation."""
    bundle, queries, _ = load_dataset(dataset)
    context = ExecutionContext.for_graph(bundle.graph)
    scenarios: List[Tuple[str, GraphQuery, CardinalityThreshold]] = []
    for name, query in queries.items():
        original = context.count(query)
        few_target = max(2, round(original * 2.0))
        many_target = max(1, round(original * 0.3))
        scenarios.append(
            (
                f"{name} too-few (C={original} -> [{few_target}; {2 * few_target}])",
                query,
                CardinalityThreshold(lower=few_target, upper=2 * few_target),
            )
        )
        scenarios.append(
            (
                f"{name} too-many (C={original} -> [{max(1, many_target // 2)}; {many_target}])",
                query,
                CardinalityThreshold(lower=max(1, many_target // 2), upper=many_target),
            )
        )
    return scenarios


def fig6_baselines(
    dataset: str = "ldbc",
    max_evaluations: int = 200,
    seed: int = 3,
) -> List[BaselineRow]:
    """Sec. 6.4.2: TRAVERSESEARCHTREE vs RANDOMSEARCH vs GREEDYLATTICE.

    All engines get the same modification vocabulary, including new
    predicates on the data's common attributes for the too-many direction.
    """
    bundle, _, _ = load_dataset(dataset)
    context = ExecutionContext.for_graph(bundle.graph)
    domain = context.attribute_domain()
    attrs = domain.common_vertex_attrs()
    rows: List[BaselineRow] = []
    for scenario, query, threshold in fig6_scenarios(dataset):
        engines = (
            (
                "traverse-search-tree",
                TraverseSearchTree(
                    context=context,
                    threshold=threshold,
                    constrainable_attrs=attrs,
                    max_evaluations=max_evaluations,
                ),
            ),
            (
                "random-search",
                RandomModificationSearch(
                    bundle.graph,
                    threshold,
                    domain=domain,
                    constrainable_attrs=attrs,
                    max_evaluations=max_evaluations,
                    seed=seed,
                ),
            ),
            (
                "greedy-lattice",
                GreedyCoarseSearch(
                    bundle.graph,
                    threshold,
                    domain=domain,
                    max_evaluations=max_evaluations,
                ),
            ),
        )
        for engine_name, engine in engines:
            result = engine.search(query)
            rows.append(
                BaselineRow(
                    scenario=scenario,
                    engine=engine_name,
                    converged=result.converged,
                    distance=result.best_distance,
                    cardinality=result.best_cardinality,
                    syntactic=result.best_syntactic,
                    evaluated=result.evaluated,
                    elapsed=result.elapsed,
                )
            )
    return rows


def fig6_topology(
    dataset: str = "ldbc",
    max_evaluations: int = 250,
) -> List[BaselineRow]:
    """Sec. 6.4.3: value-level-only vs topology-enabled modification.

    Uses the why-empty variants with an ``at_least`` threshold: the
    injected failures sit inside single predicates, but some thresholds
    are only reachable when whole edges may be dropped.
    """
    bundle, queries, empty_variant = load_dataset(dataset)
    context = ExecutionContext.for_graph(bundle.graph)
    rows: List[BaselineRow] = []
    for name, query in queries.items():
        original = context.count(query)
        target = max(2, original * 4)
        threshold = CardinalityThreshold.at_least(target)
        for topo in (False, True):
            engine = TraverseSearchTree(
                context=context,
                threshold=threshold,
                include_topology=topo,
                max_evaluations=max_evaluations,
            )
            result = engine.search(query)
            rows.append(
                BaselineRow(
                    scenario=f"{name} (C={original} -> >= {target})",
                    engine="with-topology" if topo else "predicates-only",
                    converged=result.converged,
                    distance=result.best_distance,
                    cardinality=result.best_cardinality,
                    syntactic=result.best_syntactic,
                    evaluated=result.evaluated,
                    elapsed=result.elapsed,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Appendix A: data sets and queries (Table A.1)
# ---------------------------------------------------------------------------


@dataclass
class DatasetRow:
    """One row of the Table A.1 data-set/query inventory."""

    dataset: str
    query: str
    vertices: int
    edges: int
    query_vertices: int
    query_edges: int
    cardinality: int


def tabA_datasets() -> List[DatasetRow]:
    """Table A.1: generated data sets and measured query cardinalities."""
    rows: List[DatasetRow] = []
    for dataset in ("ldbc", "dbpedia"):
        bundle, queries, _ = load_dataset(dataset)
        context = ExecutionContext.for_graph(bundle.graph)
        for name, query in queries.items():
            rows.append(
                DatasetRow(
                    dataset=dataset,
                    query=name,
                    vertices=bundle.graph.num_vertices,
                    edges=bundle.graph.num_edges,
                    query_vertices=query.num_vertices,
                    query_edges=query.num_edges,
                    cardinality=context.count(query),
                )
            )
    return rows
