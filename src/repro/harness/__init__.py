"""Experiment drivers and reporting for the evaluation reproduction."""

from repro.harness import experiments, reporting
from repro.harness.experiments import (
    CARDINALITY_FACTORS,
    appB_resources,
    fig3_10_correlation,
    fig3_random_explanations,
    fig4_boundedmcs,
    fig4_discovermcs,
    fig5_convergence,
    fig5_priorities,
    fig5_user_integration,
    fig6_baselines,
    fig6_scenarios,
    fig6_topology,
    load_dataset,
    tabA_datasets,
)
from repro.harness.reporting import (
    format_cache_report,
    format_series,
    format_table,
    sparkline,
)

__all__ = [
    "CARDINALITY_FACTORS",
    "appB_resources",
    "experiments",
    "fig3_10_correlation",
    "fig3_random_explanations",
    "fig4_boundedmcs",
    "fig4_discovermcs",
    "fig5_convergence",
    "fig5_priorities",
    "fig5_user_integration",
    "fig6_baselines",
    "fig6_scenarios",
    "fig6_topology",
    "format_cache_report",
    "format_series",
    "format_table",
    "load_dataset",
    "reporting",
    "sparkline",
    "tabA_datasets",
]
